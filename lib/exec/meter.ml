type event =
  | E_instr of Hw.Cost.kind * int
  | E_mem of { addr : int; write : bool; dependent : bool }
  | E_call of { instance : string; meth : string; args : int array; ret : int }
  | E_loop_head of string
  | E_loop_iter of string
  | E_loop_exit of string
  | E_branch of bool

(* Observations live in a pair of parallel growable arrays rather than a
   list: [observe] is on the per-packet fast path of every stateful NF, and
   after the arrays have grown to the packet's high-water mark it allocates
   nothing.  [reset_observations] only rewinds the length. *)
type t = {
  model : Hw.Model.t;
  tracing : bool;
  mutable events : event list;  (** reversed *)
  mutable obs_pcv : Perf.Pcv.t array;
  mutable obs_val : int array;
  mutable obs_len : int;
}

let create ?(trace = false) model =
  {
    model;
    tracing = trace;
    events = [];
    obs_pcv = Array.make 16 Perf.Pcv.expired;
    obs_val = Array.make 16 0;
    obs_len = 0;
  }

let push t e = if t.tracing then t.events <- e :: t.events

let instr t kind n =
  t.model.Hw.Model.instr kind n;
  push t (E_instr (kind, n))

let mem t ?(write = false) ?(dependent = false) addr =
  t.model.Hw.Model.mem ~addr ~write ~dependent;
  push t (E_mem { addr; write; dependent })

let call_event t ~instance ~meth ~args ~ret =
  push t (E_call { instance; meth; args; ret })

let branch t taken = push t (E_branch taken)
let loop_head t pcv = push t (E_loop_head pcv)
let loop_iter t pcv = push t (E_loop_iter pcv)
let loop_exit t pcv = push t (E_loop_exit pcv)

let grow t =
  let cap = Array.length t.obs_pcv in
  let cap' = 2 * cap in
  let pcv' = Array.make cap' Perf.Pcv.expired in
  let val' = Array.make cap' 0 in
  Array.blit t.obs_pcv 0 pcv' 0 cap;
  Array.blit t.obs_val 0 val' 0 cap;
  t.obs_pcv <- pcv';
  t.obs_val <- val'

let observe t pcv value =
  if t.obs_len = Array.length t.obs_pcv then grow t;
  Array.unsafe_set t.obs_pcv t.obs_len pcv;
  Array.unsafe_set t.obs_val t.obs_len value;
  t.obs_len <- t.obs_len + 1

let tracing t = t.tracing
let coupled_mem t = t.model.Hw.Model.coupled_mem
let model_instr t = t.model.Hw.Model.instr
let model_mem t = t.model.Hw.Model.mem
let model_mem_bulk t = t.model.Hw.Model.mem_bulk
let ic t = t.model.Hw.Model.instr_count ()
let ma t = t.model.Hw.Model.mem_count ()
let cycles t = t.model.Hw.Model.cycles ()
let events t = List.rev t.events

let observations t =
  let rec build i acc =
    if i < 0 then acc
    else build (i - 1) ((t.obs_pcv.(i), t.obs_val.(i)) :: acc)
  in
  build (t.obs_len - 1) []

let fold_binding combine t =
  let acc = ref [] in
  for i = 0 to t.obs_len - 1 do
    let pcv = t.obs_pcv.(i) and v = t.obs_val.(i) in
    acc :=
      (match List.assoc_opt pcv !acc with
      | None -> (pcv, v) :: !acc
      | Some v' -> (pcv, combine v v') :: List.remove_assoc pcv !acc)
  done;
  List.sort (fun (a, _) (b, _) -> Perf.Pcv.compare a b) !acc

let pcv_max t = fold_binding max t
let pcv_sum t = fold_binding ( + ) t

let reset_observations t =
  t.obs_len <- 0;
  t.events <- []
