type event =
  | E_instr of Hw.Cost.kind * int
  | E_mem of { addr : int; write : bool; dependent : bool }
  | E_call of { instance : string; meth : string; args : int array; ret : int }
  | E_loop_head of string
  | E_loop_iter of string
  | E_loop_exit of string
  | E_branch of bool

type t = {
  model : Hw.Model.t;
  tracing : bool;
  mutable events : event list;  (** reversed *)
  mutable obs : (Perf.Pcv.t * int) list;  (** reversed *)
}

let create ?(trace = false) model =
  { model; tracing = trace; events = []; obs = [] }

let push t e = if t.tracing then t.events <- e :: t.events

let instr t kind n =
  t.model.Hw.Model.instr kind n;
  push t (E_instr (kind, n))

let mem t ?(write = false) ?(dependent = false) addr =
  t.model.Hw.Model.mem ~addr ~write ~dependent;
  push t (E_mem { addr; write; dependent })

let call_event t ~instance ~meth ~args ~ret =
  push t (E_call { instance; meth; args; ret })

let branch t taken = push t (E_branch taken)
let loop_head t pcv = push t (E_loop_head pcv)
let loop_iter t pcv = push t (E_loop_iter pcv)
let loop_exit t pcv = push t (E_loop_exit pcv)
let observe t pcv value = t.obs <- (pcv, value) :: t.obs
let tracing t = t.tracing
let coupled_mem t = t.model.Hw.Model.coupled_mem
let model_instr t = t.model.Hw.Model.instr
let model_mem t = t.model.Hw.Model.mem
let ic t = t.model.Hw.Model.instr_count ()
let ma t = t.model.Hw.Model.mem_count ()
let cycles t = t.model.Hw.Model.cycles ()
let events t = List.rev t.events
let observations t = List.rev t.obs

let fold_binding combine t =
  List.fold_left
    (fun acc (pcv, v) ->
      match List.assoc_opt pcv acc with
      | None -> (pcv, v) :: acc
      | Some v' -> (pcv, combine v v') :: List.remove_assoc pcv acc)
    [] t.obs
  |> List.sort (fun (a, _) (b, _) -> Perf.Pcv.compare a b)

let pcv_max t = fold_binding max t
let pcv_sum t = fold_binding ( + ) t

let reset_observations t =
  t.obs <- [];
  t.events <- []
