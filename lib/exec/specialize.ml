(* Config-specialized, allocation-free compiled execution.

   [bind] freezes a compiled program against one stream's concrete
   configuration — its meter, its mode, its linked data-structure
   instances — and recompiles the IR into closures with every remaining
   source of per-packet overhead hoisted to bind time:

   - Stateful calls skip the generic [Ds] dispatch entirely.  Each call
     site resolves its instance and method ONCE, to the structure's
     specialized fast path ({!Ds.fast_path}), and reuses a preallocated
     argv.  The fast path reads keys in place and charges through a
     {!Ds.sink} that shares this runtime's deferred counters.
   - Static instruction charges are packed per straight-line segment at
     compile time: one closure adds the whole segment's per-kind counts
     in a handful of array bumps, instead of one bump per IR node.
   - When the hardware model prices memory accesses independently of
     their address ({!Hw.Model.t.mem_bulk}), memory charges batch the
     same way: statically countable accesses join the segment packs,
     dynamically counted ones (inside data-structure fast paths) bump
     one extra deferred counter, and the whole packet's accesses retire
     as a single bulk charge at flush.  Address-sensitive models (L1
     tracking, burst windows) still see every access at its real
     address, in program order.
   - Expressions compile to shape-specialized closures: variable reads
     fuse into their consumers (slot indices are known at bind time),
     comparisons compile to direct boolean tests that never materialize
     a 0/1 int, each operator gets its own closure instead of a generic
     [apply_binop] dispatch, and constant operands fold away — constant
     conditions prune their dead arm at bind time.  Control transfers
     return outcome codes instead of raising, so the per-packet
     [Concrete.Returned] exception allocation disappears.

   The specialized body is charge-equivalent, not charge-identical:
   within one straight-line segment the charges land as a single batch,
   so a packet that gets [Stuck] mid-segment can differ from the
   interpreter by part of that segment's pack (completed packets — and
   therefore everything a caller can observe across packets — are
   exact: same outcomes, IC, MA, cycles, observations; see DESIGN
   §12).  Batching is only sound when charges commute and nothing reads
   the meter mid-packet, so [bind] falls back to {!Compiled.runner}
   whenever the meter traces events, the model couples memory pricing
   to instruction counts, the mode is Analysis, or any call site lacks
   a fast path.  One runner API, three dispositions — callers never
   need to know which they got. *)

open Ir

(* Raised at bind time when some call site cannot be specialized; the
   binder falls back to the generic compiled runner. *)
exception Not_specializable

let nkinds = Hw.Cost.nkinds
let i_alu = Hw.Cost.kind_index Hw.Cost.Alu
let i_move = Hw.Cost.kind_index Hw.Cost.Move
let i_load = Hw.Cost.kind_index Hw.Cost.Load
let i_store = Hw.Cost.kind_index Hw.Cost.Store
let i_branch = Hw.Cost.kind_index Hw.Cost.Branch
let i_call = Hw.Cost.kind_index Hw.Cost.Call
let i_ret = Hw.Cost.kind_index Hw.Cost.Ret

(* One deferred counter beyond the instruction kinds: batched memory
   accesses, drained through the model's [mem_bulk] at flush.  Only
   ever bumped when the model is address-insensitive. *)
let i_mem = nkinds
let n_counts = nkinds + 1

(* Outcome codes.  [k_next] is the block fall-through sentinel; the
   codes are disjoint from it and from each other.  Forward's port
   travels through [srt.out_port] so the code stays a bare int. *)
let k_next = min_int
let code_sent = 1
let code_dropped = 2
let code_flooded = 3

(* Per-stream runtime: allocated once at [bind], reused every packet. *)
type srt = {
  meter : Meter.t;
  mutable packet : Net.Packet.t;
  slots : int array;
  counts : int array;
      (** deferred charges: [nkinds] instr kinds plus batched mems *)
  minstr : Hw.Cost.kind -> int -> unit;
  mmem : addr:int -> write:bool -> dependent:bool -> unit;
  mbulk : int -> unit;  (** drains [counts.(i_mem)]; unused unbatched *)
  mutable out_port : int;  (** valid after the body returns [code_sent] *)
}

let bump rt i n =
  let c = rt.counts in
  Array.unsafe_set c i (Array.unsafe_get c i + n)

let flush rt =
  let c = rt.counts in
  for i = 0 to nkinds - 1 do
    let n = Array.unsafe_get c i in
    if n > 0 then begin
      Array.unsafe_set c i 0;
      rt.minstr (Array.unsafe_get Hw.Cost.kind_of_index i) n
    end
  done;
  let m = Array.unsafe_get c i_mem in
  if m > 0 then begin
    Array.unsafe_set c i_mem 0;
    rt.mbulk m
  end

(* Seal the segment charges accumulated in [cur] into one pack-add
   closure, specialized by the number of distinct counters touched. *)
let seal (cur : int array) : (srt -> unit) option =
  let pairs = ref [] in
  for i = n_counts - 1 downto 0 do
    if cur.(i) > 0 then pairs := (i, cur.(i)) :: !pairs;
    cur.(i) <- 0
  done;
  match !pairs with
  | [] -> None
  | [ (i1, n1) ] -> Some (fun rt -> bump rt i1 n1)
  | [ (i1, n1); (i2, n2) ] ->
      Some
        (fun rt ->
          bump rt i1 n1;
          bump rt i2 n2)
  | [ (i1, n1); (i2, n2); (i3, n3) ] ->
      Some
        (fun rt ->
          bump rt i1 n1;
          bump rt i2 n2;
          bump rt i3 n3)
  | [ (i1, n1); (i2, n2); (i3, n3); (i4, n4) ] ->
      Some
        (fun rt ->
          bump rt i1 n1;
          bump rt i2 n2;
          bump rt i3 n3;
          bump rt i4 n4)
  | pairs ->
      let idx = Array.of_list (List.map fst pairs) in
      let cnt = Array.of_list (List.map snd pairs) in
      Some
        (fun rt ->
          for j = 0 to Array.length idx - 1 do
            bump rt (Array.unsafe_get idx j) (Array.unsafe_get cnt j)
          done)

(* Top-level runners for the compiled step/action arrays: a local
   [let rec] would capture its environment and allocate per packet. *)
let rec run_acts (arr : (srt -> unit) array) n i rt =
  if i < n then begin
    (Array.unsafe_get arr i) rt;
    run_acts arr n (i + 1) rt
  end

let rec run_steps (arr : (srt -> int) array) n i rt =
  if i = n then k_next
  else
    let r = (Array.unsafe_get arr i) rt in
    if r == k_next then run_steps arr n (i + 1) rt else r

(* One straight-line segment — the sealed charge pack plus its dynamic
   actions in program order — as a single unit closure, with the common
   small arities unrolled. *)
let seg_unit (pack : (srt -> unit) option) (acts : (srt -> unit) list) :
    (srt -> unit) option =
  match (pack, acts) with
  | None, [] -> None
  | Some p, [] -> Some p
  | None, [ a ] -> Some a
  | Some p, [ a ] ->
      Some
        (fun rt ->
          p rt;
          a rt)
  | None, [ a; b ] ->
      Some
        (fun rt ->
          a rt;
          b rt)
  | Some p, [ a; b ] ->
      Some
        (fun rt ->
          p rt;
          a rt;
          b rt)
  | None, [ a; b; c ] ->
      Some
        (fun rt ->
          a rt;
          b rt;
          c rt)
  | Some p, [ a; b; c ] ->
      Some
        (fun rt ->
          p rt;
          a rt;
          b rt;
          c rt)
  | pack, acts ->
      let arr =
        Array.of_list (match pack with Some p -> p :: acts | None -> acts)
      in
      let n = Array.length arr in
      Some (fun rt -> run_acts arr n 0 rt)

(* Loop skeletons, hoisted for the same no-capture reason. *)
type loop_cfg = {
  cpack : srt -> unit;  (** per-test charges: condition + branch *)
  lcond : srt -> bool;
  lbody : srt -> int;
  lbound : int;
  lobs : Perf.Pcv.t option;  (** observe the iteration count at exit *)
}

let rec loop_iter cfg k rt =
  cfg.cpack rt;
  let c = cfg.lcond rt in
  if k >= cfg.lbound then begin
    if c then Concrete.stuck "loop exceeded its static bound %d" cfg.lbound;
    (match cfg.lobs with
    | Some pcv -> Meter.observe rt.meter pcv k
    | None -> ());
    k_next
  end
  else if c then begin
    let r = cfg.lbody rt in
    if r == k_next then loop_iter cfg (k + 1) rt else r
  end
  else begin
    (match cfg.lobs with
    | Some pcv -> Meter.observe rt.meter pcv k
    | None -> ());
    k_next
  end

(* A compiled expression: value known at bind time (charges already
   hoisted into the enclosing segment), a bare slot read, or a closure
   producing the value (and, on address-sensitive models, firing its
   memory charges at the access point). *)
type sval = Kv of int | Sv of int | Dv of (srt -> int)

let forcev = function
  | Kv v -> fun (_ : srt) -> v
  | Sv s -> fun rt -> Array.unsafe_get rt.slots s
  | Dv f -> f

(* A compiled condition: decided at bind time, or a direct boolean
   test. *)
type sbool = Bk of bool | Bd of (srt -> bool)

(* Constant-offset packet loads on the batched path, one closure per
   width so the accessor call compiles direct; and their fusions into
   an assignment, which save the intermediate value closure on the
   commonest header-parsing shape [x := pkt[k]]. *)
let dv_load_b w off =
  match w with
  | Expr.W8 ->
      Dv
        (fun rt ->
          try Net.Packet.get_u8 rt.packet off
          with Invalid_argument msg -> Concrete.stuck "%s" msg)
  | Expr.W16 ->
      Dv
        (fun rt ->
          try Net.Packet.get_u16 rt.packet off
          with Invalid_argument msg -> Concrete.stuck "%s" msg)
  | Expr.W32 ->
      Dv
        (fun rt ->
          try Net.Packet.get_u32 rt.packet off
          with Invalid_argument msg -> Concrete.stuck "%s" msg)
  | Expr.W48 ->
      Dv
        (fun rt ->
          try Net.Packet.get_u48 rt.packet off
          with Invalid_argument msg -> Concrete.stuck "%s" msg)

let act_load_assign_b w off s : srt -> unit =
  match w with
  | Expr.W8 ->
      fun rt ->
        Array.unsafe_set rt.slots s
          (try Net.Packet.get_u8 rt.packet off
           with Invalid_argument msg -> Concrete.stuck "%s" msg)
  | Expr.W16 ->
      fun rt ->
        Array.unsafe_set rt.slots s
          (try Net.Packet.get_u16 rt.packet off
           with Invalid_argument msg -> Concrete.stuck "%s" msg)
  | Expr.W32 ->
      fun rt ->
        Array.unsafe_set rt.slots s
          (try Net.Packet.get_u32 rt.packet off
           with Invalid_argument msg -> Concrete.stuck "%s" msg)
  | Expr.W48 ->
      fun rt ->
        Array.unsafe_set rt.slots s
          (try Net.Packet.get_u48 rt.packet off
           with Invalid_argument msg -> Concrete.stuck "%s" msg)

(* ---- shape-specialized operators -----------------------------------

   One dedicated closure per binop node, with slot reads and constants
   fused in.  Both operands are always evaluated, left first — same as
   the interpreter (no short-circuit even for Land/Lor) — so stuck
   points and, on address-sensitive models, memory-charge order line
   up.  Div/Rem inline the zero test so no exception crosses the hot
   path for defined results. *)

let stuck_undef msg = Dv (fun (_ : srt) -> Concrete.stuck "%s" msg)

let rec specialize_binop op (a : sval) (b : sval) : sval =
  match (a, b) with
  | Kv x, Kv y -> (
      match Semantics.apply_binop op x y with
      | v -> Kv v
      | exception Semantics.Undefined msg -> stuck_undef msg)
  | _ -> (
      match op with
      | Expr.Add -> (
          match (a, b) with
          | Sv s, Kv y -> Dv (fun rt -> Array.unsafe_get rt.slots s + y)
          | Sv s1, Sv s2 ->
              Dv
                (fun rt ->
                  Array.unsafe_get rt.slots s1 + Array.unsafe_get rt.slots s2)
          | _ ->
              let fa = forcev a and fb = forcev b in
              Dv
                (fun rt ->
                  let x = fa rt in
                  let y = fb rt in
                  x + y))
      | Expr.Sub -> (
          match (a, b) with
          | Sv s, Kv y -> Dv (fun rt -> Array.unsafe_get rt.slots s - y)
          | _ ->
              let fa = forcev a and fb = forcev b in
              Dv
                (fun rt ->
                  let x = fa rt in
                  let y = fb rt in
                  x - y))
      | Expr.And -> (
          match (a, b) with
          | Sv s, Kv y -> Dv (fun rt -> Array.unsafe_get rt.slots s land y)
          | Dv f, Kv y -> Dv (fun rt -> f rt land y)
          | _ ->
              let fa = forcev a and fb = forcev b in
              Dv
                (fun rt ->
                  let x = fa rt in
                  let y = fb rt in
                  x land y))
      | Expr.Or ->
          let fa = forcev a and fb = forcev b in
          Dv
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              x lor y)
      | Expr.Xor ->
          let fa = forcev a and fb = forcev b in
          Dv
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              x lxor y)
      | Expr.Shl -> (
          match (a, b) with
          | Sv s, Kv y ->
              let sh = y land 63 in
              Dv (fun rt -> Array.unsafe_get rt.slots s lsl sh)
          | Dv f, Kv y ->
              let sh = y land 63 in
              Dv (fun rt -> f rt lsl sh)
          | _ ->
              let fa = forcev a and fb = forcev b in
              Dv
                (fun rt ->
                  let x = fa rt in
                  let y = fb rt in
                  x lsl (y land 63)))
      | Expr.Shr -> (
          match (a, b) with
          | Sv s, Kv y ->
              let sh = y land 63 in
              Dv (fun rt -> Array.unsafe_get rt.slots s lsr sh)
          | Dv f, Kv y ->
              let sh = y land 63 in
              Dv (fun rt -> f rt lsr sh)
          | _ ->
              let fa = forcev a and fb = forcev b in
              Dv
                (fun rt ->
                  let x = fa rt in
                  let y = fb rt in
                  x lsr (y land 63)))
      | Expr.Mul ->
          let fa = forcev a and fb = forcev b in
          Dv
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              x * y)
      | Expr.Div -> (
          match b with
          | Kv 0 -> stuck_undef "division by zero"
          | Kv y ->
              let fa = forcev a in
              Dv (fun rt -> fa rt / y)
          | _ ->
              let fa = forcev a and fb = forcev b in
              Dv
                (fun rt ->
                  let x = fa rt in
                  let y = fb rt in
                  if y = 0 then Concrete.stuck "division by zero" else x / y))
      | Expr.Rem -> (
          match b with
          | Kv 0 -> stuck_undef "remainder by zero"
          | Kv y ->
              let fa = forcev a in
              Dv (fun rt -> fa rt mod y)
          | _ ->
              let fa = forcev a and fb = forcev b in
              Dv
                (fun rt ->
                  let x = fa rt in
                  let y = fb rt in
                  if y = 0 then Concrete.stuck "remainder by zero"
                  else x mod y))
      | Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge
      | Expr.Land | Expr.Lor -> (
          match specialize_bool op a b with
          | Bk true -> Kv 1
          | Bk false -> Kv 0
          | Bd f -> Dv (fun rt -> if f rt then 1 else 0)))

(* Comparisons and logical connectives as direct boolean tests. *)
and specialize_bool op (a : sval) (b : sval) : sbool =
  match op with
  | Expr.Eq -> (
      match (a, b) with
      | Kv x, Kv y -> Bk (x = y)
      | Sv s, Kv y -> Bd (fun rt -> Array.unsafe_get rt.slots s = y)
      | Kv x, Sv s -> Bd (fun rt -> x = Array.unsafe_get rt.slots s)
      | Sv s1, Sv s2 ->
          Bd
            (fun rt ->
              Array.unsafe_get rt.slots s1 = Array.unsafe_get rt.slots s2)
      | Dv f, Kv y -> Bd (fun rt -> f rt = y)
      | _ ->
          let fa = forcev a and fb = forcev b in
          Bd
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              x = y))
  | Expr.Ne -> (
      match (a, b) with
      | Kv x, Kv y -> Bk (x <> y)
      | Sv s, Kv y -> Bd (fun rt -> Array.unsafe_get rt.slots s <> y)
      | Kv x, Sv s -> Bd (fun rt -> x <> Array.unsafe_get rt.slots s)
      | Sv s1, Sv s2 ->
          Bd
            (fun rt ->
              Array.unsafe_get rt.slots s1 <> Array.unsafe_get rt.slots s2)
      | Dv f, Kv y -> Bd (fun rt -> f rt <> y)
      | _ ->
          let fa = forcev a and fb = forcev b in
          Bd
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              x <> y))
  | Expr.Lt -> (
      match (a, b) with
      | Kv x, Kv y -> Bk (x < y)
      | Sv s, Kv y -> Bd (fun rt -> Array.unsafe_get rt.slots s < y)
      | Kv x, Sv s -> Bd (fun rt -> x < Array.unsafe_get rt.slots s)
      | Dv f, Kv y -> Bd (fun rt -> f rt < y)
      | _ ->
          let fa = forcev a and fb = forcev b in
          Bd
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              x < y))
  | Expr.Le -> (
      match (a, b) with
      | Kv x, Kv y -> Bk (x <= y)
      | Sv s, Kv y -> Bd (fun rt -> Array.unsafe_get rt.slots s <= y)
      | Dv f, Kv y -> Bd (fun rt -> f rt <= y)
      | _ ->
          let fa = forcev a and fb = forcev b in
          Bd
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              x <= y))
  | Expr.Gt -> (
      match (a, b) with
      | Kv x, Kv y -> Bk (x > y)
      | Sv s, Kv y -> Bd (fun rt -> Array.unsafe_get rt.slots s > y)
      | Dv f, Kv y -> Bd (fun rt -> f rt > y)
      | _ ->
          let fa = forcev a and fb = forcev b in
          Bd
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              x > y))
  | Expr.Ge -> (
      match (a, b) with
      | Kv x, Kv y -> Bk (x >= y)
      | Sv s, Kv y -> Bd (fun rt -> Array.unsafe_get rt.slots s >= y)
      | Dv f, Kv y -> Bd (fun rt -> f rt >= y)
      | _ ->
          let fa = forcev a and fb = forcev b in
          Bd
            (fun rt ->
              let x = fa rt in
              let y = fb rt in
              x >= y))
  | Expr.Land -> (
      match (a, b) with
      | Kv x, Kv y -> Bk (x <> 0 && y <> 0)
      | _ ->
          let fa = forcev a and fb = forcev b in
          Bd
            (fun rt ->
              let x = fa rt <> 0 in
              let y = fb rt <> 0 in
              x && y))
  | Expr.Lor -> (
      match (a, b) with
      | Kv x, Kv y -> Bk (x <> 0 || y <> 0)
      | _ ->
          let fa = forcev a and fb = forcev b in
          Bd
            (fun rt ->
              let x = fa rt <> 0 in
              let y = fb rt <> 0 in
              x || y))
  | _ -> (
      match specialize_binop op a b with
      | Kv n -> Bk (n <> 0)
      | Sv s -> Bd (fun rt -> Array.unsafe_get rt.slots s <> 0)
      | Dv f -> Bd (fun rt -> f rt <> 0))

(* ---- trace fast path ------------------------------------------------

   For a call-free, loop-free program (a straight-line chain of header
   assignments, guard tests and at most trailing stores — the firewall
   and static-router shape), the whole hot path compiles to ONE trace:
   an op sequence of slot assignments and boolean guards, a store
   probe/commit, and a single precomputed charge pack covering RX
   framing + every statement on the path + TX framing.  The trace is
   attempted first each packet; any guard miss, bounds miss, or
   exception bails out to the general specialized body, which recharges
   from zero — nothing observable has happened yet, because everything
   the probe phase touches (slots, out_port, store staging) is scratch,
   and packet stores only commit after every fallible step has
   passed.  Only built on batched (address-insensitive) models, where
   the path's memory charges are a static count. *)

(* Raised during trace compilation when the program leaves the traceable
   shape (a call, a loop, a branch with two live arms…). *)
exception Trace_bail

type top = Tact of (srt -> unit) | Tguard of (srt -> bool) * bool

type tstore = {
  st_w : Expr.width;
  st_bytes : int;
  st_off : srt -> int;
  st_val : srt -> int;
  mutable st_o : int;  (** staged offset, valid after probe *)
  mutable st_v : int;  (** staged value *)
}

(* Fold the op list into one closure chain at bind time: consecutive
   actions merge pairwise and each guard specializes on its expected
   polarity, so running the trace is a straight run of direct tail
   calls with no per-op dispatch. *)
let rec fuse_ops = function
  | [] -> fun (_ : srt) -> true
  | Tact a :: Tact b :: rest ->
      fuse_ops
        (Tact
           (fun rt ->
             a rt;
             b rt)
        :: rest)
  | Tact a :: rest ->
      let k = fuse_ops rest in
      fun rt ->
        a rt;
        k rt
  | Tguard (g, true) :: rest ->
      let k = fuse_ops rest in
      fun rt -> g rt && k rt
  | Tguard (g, false) :: rest ->
      let k = fuse_ops rest in
      fun rt -> (not (g rt)) && k rt

(* Evaluate and bounds-check every store before mutating the packet:
   a failed probe must leave no trace of the attempt. *)
let rec probe_stores (arr : tstore array) n i rt =
  i = n
  ||
  let s = Array.unsafe_get arr i in
  let o = s.st_off rt in
  let v = s.st_val rt in
  s.st_o <- o;
  s.st_v <- v;
  o >= 0
  && o + s.st_bytes <= Net.Packet.length rt.packet
  && probe_stores arr n (i + 1) rt

let commit_store s rt =
  match s.st_w with
  | Expr.W8 -> Net.Packet.set_u8 rt.packet s.st_o s.st_v
  | Expr.W16 -> Net.Packet.set_u16 rt.packet s.st_o s.st_v
  | Expr.W32 -> Net.Packet.set_u32 rt.packet s.st_o s.st_v
  | Expr.W48 -> Net.Packet.set_u48 rt.packet s.st_o s.st_v

let rec commit_stores arr n i rt =
  if i < n then begin
    commit_store (Array.unsafe_get arr i) rt;
    commit_stores arr n (i + 1) rt
  end

(* Staged stores commit after the whole path is validated, so a read of
   packet bytes a pending store will write would observe stale data.
   [load_ranges] collects the constant byte ranges [e] reads ([None] if
   any read offset is dynamic); the trace compiler bails unless every
   read provably misses every staged store.  (Pkt_len is not a read —
   stores never change the length.) *)
let rec load_ranges = function
  | Expr.Pkt_load (w, Expr.Const off) -> Some [ (off, Expr.bytes_of_width w) ]
  | Expr.Pkt_load _ -> None
  | Expr.Unop (_, a) -> load_ranges a
  | Expr.Binop (_, a, b) -> (
      match (load_ranges a, load_ranges b) with
      | Some la, Some lb -> Some (la @ lb)
      | _ -> None)
  | Expr.Const _ | Expr.Var _ | Expr.Pkt_len -> Some []

let ranges_overlap (o1, n1) (o2, n2) = o1 < o2 + n2 && o2 < o1 + n1

let rec expr_vars acc = function
  | Expr.Var v -> v :: acc
  | Expr.Unop (_, a) -> expr_vars acc a
  | Expr.Binop (_, a, b) -> expr_vars (expr_vars acc a) b
  | Expr.Pkt_load (_, o) -> expr_vars acc o
  | Expr.Const _ | Expr.Pkt_len -> acc

(* The RX/TX framing of [Concrete.charge_rx]/[charge_tx] in deferred
   form.  The [_b] variants batch the framing accesses too. *)
let rx_frame rt =
  bump rt i_alu 22;
  bump rt i_move 8;
  bump rt i_load 4;
  for i = 0 to 3 do
    rt.mmem ~addr:(Concrete.rx_ring_base + (i * 8)) ~write:false
      ~dependent:false
  done;
  bump rt i_branch 2

let rx_frame_b rt =
  bump rt i_alu 22;
  bump rt i_move 8;
  bump rt i_load 4;
  bump rt i_mem 4;
  bump rt i_branch 2

let tx_drop_frame rt =
  bump rt i_alu 4;
  bump rt i_store 1;
  rt.mmem ~addr:Concrete.rx_ring_base ~write:true ~dependent:false

let tx_drop_frame_b rt =
  bump rt i_alu 4;
  bump rt i_store 1;
  bump rt i_mem 1

let tx_sent_frame rt =
  bump rt i_alu 14;
  bump rt i_move 4;
  bump rt i_store 3;
  for i = 0 to 2 do
    rt.mmem ~addr:(Concrete.rx_ring_base + 64 + (i * 8)) ~write:true
      ~dependent:false
  done;
  bump rt i_branch 1

let tx_sent_frame_b rt =
  bump rt i_alu 14;
  bump rt i_move 4;
  bump rt i_store 3;
  bump rt i_mem 3;
  bump rt i_branch 1

type t = {
  specialized : bool;
  run_fn : ?in_port:int -> ?now:int -> Net.Packet.t -> Concrete.run;
  exec_fn : in_port:int -> now:int -> Net.Packet.t -> int;
  out_port_fn : unit -> int;
}

let specialized t = t.specialized
let run t = t.run_fn
let exec t ~in_port ~now packet = t.exec_fn ~in_port ~now packet
let out_port t = t.out_port_fn ()

let outcome_of_code t code =
  if code = code_sent then Concrete.Sent (t.out_port_fn ())
  else if code = code_dropped then Concrete.Dropped
  else if code = code_flooded then Concrete.Flooded
  else invalid_arg "Specialize.outcome_of_code: not an outcome code"

(* Comments compile to nothing; an all-comment block is empty, so an
   [If] over it needs no control step at all. *)
let rec block_empty = function
  | [] -> true
  | Stmt.Comment _ :: rest -> block_empty rest
  | _ -> false

(* Compile [program] against the frozen (dss, meter) binding.  Raises
   [Not_specializable] when a call site has no fast path. *)
let build program (dss : Ds.env) meter =
  let batch = Meter.model_mem_bulk meter <> None in
  let slots_tbl = Hashtbl.create 16 in
  let next_slot = ref 0 in
  let slot_of v =
    match Hashtbl.find_opt slots_tbl v with
    | Some s -> s
    | None ->
        let s = !next_slot in
        incr next_slot;
        Hashtbl.add slots_tbl v s;
        s
  in
  List.iter (fun v -> ignore (slot_of v)) Program.input_vars;
  let bound =
    List.fold_left
      (fun set v ->
        ignore (slot_of v);
        v :: set)
      Program.input_vars
      (Eval.assigned_vars program.Program.body)
  in
  let counts = Array.make n_counts 0 in
  let sink =
    {
      Ds.s_counts = counts;
      s_mem =
        (if batch then fun ~addr:_ ~write:_ ~dependent:_ ->
           Array.unsafe_set counts i_mem (Array.unsafe_get counts i_mem + 1)
         else Meter.model_mem meter);
      s_mem_batched = batch;
      s_meter = meter;
    }
  in
  let resolve instance meth =
    match List.assoc_opt instance dss with
    | None -> raise Not_specializable
    | Some ds -> (
        match ds.Ds.fast_path sink meth with
        | Some f -> f
        | None -> raise Not_specializable)
  in
  let rec sexpr cur (e : Expr.t) : sval =
    match e with
    | Expr.Const n -> Kv n
    | Expr.Var v ->
        if List.mem v bound then Sv (slot_of v)
        else Dv (fun _ -> Concrete.stuck "unbound variable %s" v)
    | Expr.Pkt_len ->
        cur.(i_move) <- cur.(i_move) + 1;
        Dv (fun rt -> Net.Packet.length rt.packet)
    | Expr.Pkt_load (w, off_e) -> (
        let load =
          match w with
          | Expr.W8 -> Net.Packet.get_u8
          | Expr.W16 -> Net.Packet.get_u16
          | Expr.W32 -> Net.Packet.get_u32
          | Expr.W48 -> Net.Packet.get_u48
        in
        cur.(i_load) <- cur.(i_load) + 1;
        if batch then cur.(i_mem) <- cur.(i_mem) + 1;
        match sexpr cur off_e with
        | Kv off when off >= 0 && batch -> dv_load_b w off
        | Kv off when off >= 0 ->
            let addr = Concrete.packet_base + off in
            Dv
              (fun rt ->
                rt.mmem ~addr ~write:false ~dependent:false;
                try load rt.packet off
                with Invalid_argument msg -> Concrete.stuck "%s" msg)
        | voff when batch ->
            let off = forcev voff in
            Dv
              (fun rt ->
                let off = off rt in
                if off < 0 then Concrete.stuck "negative packet offset";
                try load rt.packet off
                with Invalid_argument msg -> Concrete.stuck "%s" msg)
        | voff ->
            let off = forcev voff in
            Dv
              (fun rt ->
                let off = off rt in
                if off < 0 then Concrete.stuck "negative packet offset";
                rt.mmem ~addr:(Concrete.packet_base + off) ~write:false
                  ~dependent:false;
                try load rt.packet off
                with Invalid_argument msg -> Concrete.stuck "%s" msg))
    | Expr.Unop (op, a) -> (
        cur.(i_alu) <- cur.(i_alu) + 1;
        match (op, sexpr cur a) with
        | _, Kv v -> Kv (Semantics.apply_unop op v)
        | Expr.Lnot, Sv s ->
            Dv (fun rt -> if Array.unsafe_get rt.slots s = 0 then 1 else 0)
        | Expr.Lnot, v ->
            let f = forcev v in
            Dv (fun rt -> if f rt = 0 then 1 else 0)
        | Expr.Bnot, v ->
            let f = forcev v in
            Dv (fun rt -> lnot (f rt) land 0xffff_ffff))
    | Expr.Binop (op, a, b) ->
        let ki = Hw.Cost.kind_index (Concrete.kind_of_binop op) in
        cur.(ki) <- cur.(ki) + 1;
        let va = sexpr cur a in
        let vb = sexpr cur b in
        specialize_binop op va vb
  in
  (* Conditions compile through [specialize_bool] so comparisons test
     directly instead of materializing 0/1. *)
  let scond cur (e : Expr.t) : sbool =
    match e with
    | Expr.Binop (op, a, b) ->
        let ki = Hw.Cost.kind_index (Concrete.kind_of_binop op) in
        cur.(ki) <- cur.(ki) + 1;
        let va = sexpr cur a in
        let vb = sexpr cur b in
        specialize_bool op va vb
    | _ -> (
        match sexpr cur e with
        | Kv n -> Bk (n <> 0)
        | Sv s -> Bd (fun rt -> Array.unsafe_get rt.slots s <> 0)
        | Dv f -> Bd (fun rt -> f rt <> 0))
  in
  (* A block compiles to [srt -> int]: an outcome code, or [k_next] for
     fall-through.  Statements accumulate into straight-line segments —
     one sealed charge pack plus the dynamic actions in program order —
     broken by control (If/While/Return). *)
  let rec sblock (block : Stmt.block) : srt -> int =
    let cur = Array.make n_counts 0 in
    let pending = ref [] in
    let steps = ref [] in
    (* Each control step absorbs the straight-line segment before it:
       one closure runs the pack, the actions, and the transfer. *)
    let take_seg () =
      let pack = seal cur in
      let acts = List.rev !pending in
      pending := [];
      seg_unit pack acts
    in
    let push_seg () =
      match take_seg () with
      | None -> ()
      | Some u ->
          steps :=
            (fun rt ->
              u rt;
              k_next)
            :: !steps
    in
    let push_ctl f =
      match take_seg () with
      | None -> steps := f :: !steps
      | Some u ->
          steps :=
            (fun rt ->
              u rt;
              f rt)
            :: !steps
    in
    let loop_ctl ~bound ~observe cond_e body =
      (* shared Unroll/Pcv_loop skeleton: a per-test pack (condition
         charges + the branch), the body, the static bound check *)
      let ccur = Array.make n_counts 0 in
      let cond = scond ccur cond_e in
      ccur.(i_branch) <- ccur.(i_branch) + 1;
      let cpack =
        match seal ccur with Some f -> f | None -> fun (_ : srt) -> ()
      in
      let lcond = match cond with Bk b -> fun (_ : srt) -> b | Bd f -> f in
      let cfg =
        { cpack; lcond; lbody = sblock body; lbound = bound; lobs = observe }
      in
      fun rt -> loop_iter cfg 0 rt
    in
    List.iter
      (fun (stmt : Stmt.t) ->
        match stmt with
        | Stmt.Comment _ -> ()
        | Stmt.Assign (v, Expr.Pkt_load (w, Expr.Const off))
          when off >= 0 && batch ->
            (* header parsing [x := pkt[k]]: load straight into the slot *)
            cur.(i_load) <- cur.(i_load) + 1;
            cur.(i_mem) <- cur.(i_mem) + 1;
            cur.(i_move) <- cur.(i_move) + 1;
            pending := act_load_assign_b w off (slot_of v) :: !pending
        | Stmt.Assign (v, e) -> (
            let value = sexpr cur e in
            cur.(i_move) <- cur.(i_move) + 1;
            let s = slot_of v in
            match value with
            | Kv n ->
                pending :=
                  (fun rt -> Array.unsafe_set rt.slots s n) :: !pending
            | Sv s' ->
                pending :=
                  (fun rt ->
                    Array.unsafe_set rt.slots s (Array.unsafe_get rt.slots s'))
                  :: !pending
            | Dv f ->
                pending :=
                  (fun rt -> Array.unsafe_set rt.slots s (f rt)) :: !pending)
        | Stmt.Pkt_store (w, off_e, val_e) ->
            let store =
              match w with
              | Expr.W8 -> Net.Packet.set_u8
              | Expr.W16 -> Net.Packet.set_u16
              | Expr.W32 -> Net.Packet.set_u32
              | Expr.W48 -> Net.Packet.set_u48
            in
            let off = forcev (sexpr cur off_e) in
            let value = forcev (sexpr cur val_e) in
            cur.(i_store) <- cur.(i_store) + 1;
            if batch then begin
              cur.(i_mem) <- cur.(i_mem) + 1;
              pending :=
                (fun rt ->
                  let off = off rt in
                  let value = value rt in
                  if off < 0 then Concrete.stuck "negative packet offset";
                  try store rt.packet off value
                  with Invalid_argument msg -> Concrete.stuck "%s" msg)
                :: !pending
            end
            else
              pending :=
                (fun rt ->
                  let off = off rt in
                  let value = value rt in
                  if off < 0 then Concrete.stuck "negative packet offset";
                  rt.mmem ~addr:(Concrete.packet_base + off) ~write:true
                    ~dependent:false;
                  try store rt.packet off value
                  with Invalid_argument msg -> Concrete.stuck "%s" msg)
                :: !pending
        | Stmt.Call { ret; instance; meth; args } ->
            let cargs = List.map (fun a -> forcev (sexpr cur a)) args in
            cur.(i_call) <- cur.(i_call) + 1;
            cur.(i_ret) <- cur.(i_ret) + 1;
            let argv = Array.make (max (List.length cargs) 1) 0 in
            let fn = resolve instance meth in
            (* marshal + dispatch + return-slot write as one closure,
               unrolled for the common arities *)
            let ret_slot =
              match ret with
              | None -> -1
              | Some r ->
                  cur.(i_move) <- cur.(i_move) + 1;
                  slot_of r
            in
            let act : srt -> unit =
              match (cargs, ret) with
              | [], None ->
                  fun (_ : srt) ->
                    Obs.Metrics.incr Concrete.c_calls;
                    ignore (fn argv)
              | [], Some _ ->
                  fun rt ->
                    Obs.Metrics.incr Concrete.c_calls;
                    Array.unsafe_set rt.slots ret_slot (fn argv)
              | [ a0 ], None ->
                  fun rt ->
                    Array.unsafe_set argv 0 (a0 rt);
                    Obs.Metrics.incr Concrete.c_calls;
                    ignore (fn argv)
              | [ a0 ], Some _ ->
                  fun rt ->
                    Array.unsafe_set argv 0 (a0 rt);
                    Obs.Metrics.incr Concrete.c_calls;
                    Array.unsafe_set rt.slots ret_slot (fn argv)
              | [ a0; a1 ], None ->
                  fun rt ->
                    Array.unsafe_set argv 0 (a0 rt);
                    Array.unsafe_set argv 1 (a1 rt);
                    Obs.Metrics.incr Concrete.c_calls;
                    ignore (fn argv)
              | [ a0; a1 ], Some _ ->
                  fun rt ->
                    Array.unsafe_set argv 0 (a0 rt);
                    Array.unsafe_set argv 1 (a1 rt);
                    Obs.Metrics.incr Concrete.c_calls;
                    Array.unsafe_set rt.slots ret_slot (fn argv)
              | [ a0; a1; a2 ], None ->
                  fun rt ->
                    Array.unsafe_set argv 0 (a0 rt);
                    Array.unsafe_set argv 1 (a1 rt);
                    Array.unsafe_set argv 2 (a2 rt);
                    Obs.Metrics.incr Concrete.c_calls;
                    ignore (fn argv)
              | [ a0; a1; a2 ], Some _ ->
                  fun rt ->
                    Array.unsafe_set argv 0 (a0 rt);
                    Array.unsafe_set argv 1 (a1 rt);
                    Array.unsafe_set argv 2 (a2 rt);
                    Obs.Metrics.incr Concrete.c_calls;
                    Array.unsafe_set rt.slots ret_slot (fn argv)
              | cargs, ret ->
                  let cargs = Array.of_list cargs in
                  let nargs = Array.length cargs in
                  let marshal rt =
                    for i = 0 to nargs - 1 do
                      Array.unsafe_set argv i ((Array.unsafe_get cargs i) rt)
                    done;
                    Obs.Metrics.incr Concrete.c_calls
                  in
                  if ret = None then fun rt ->
                    marshal rt;
                    ignore (fn argv)
                  else fun rt ->
                    marshal rt;
                    Array.unsafe_set rt.slots ret_slot (fn argv)
            in
            pending := act :: !pending
        | Stmt.If (cond_e, then_, else_) -> (
            let cond = scond cur cond_e in
            cur.(i_branch) <- cur.(i_branch) + 1;
            match cond with
            | Bk true ->
                (* arm decided at bind time; the dead arm never compiles *)
                if not (block_empty then_) then push_ctl (sblock then_)
            | Bk false ->
                if not (block_empty else_) then push_ctl (sblock else_)
            | Bd c -> (
                match (block_empty then_, block_empty else_) with
                | true, true ->
                    (* still evaluate: the condition may charge memory
                       accesses (unbatched) or get stuck *)
                    pending := (fun rt -> ignore (c rt)) :: !pending
                | false, true ->
                    let cthen = sblock then_ in
                    push_ctl (fun rt -> if c rt then cthen rt else k_next)
                | true, false ->
                    let celse = sblock else_ in
                    push_ctl (fun rt -> if c rt then k_next else celse rt)
                | false, false ->
                    let cthen = sblock then_ and celse = sblock else_ in
                    push_ctl (fun rt -> if c rt then cthen rt else celse rt)))
        | Stmt.While (Stmt.Unroll bound, cond_e, body) ->
            push_ctl (loop_ctl ~bound ~observe:None cond_e body)
        | Stmt.While (Stmt.Pcv_loop (name, bound), cond_e, body) ->
            push_ctl
              (loop_ctl ~bound ~observe:(Some (Perf.Pcv.v name)) cond_e body)
        | Stmt.Return action -> (
            match action with
            | Stmt.Forward port_e -> (
                let port = sexpr cur port_e in
                cur.(i_ret) <- cur.(i_ret) + 1;
                match port with
                | Kv p ->
                    push_ctl (fun rt ->
                        rt.out_port <- p;
                        code_sent)
                | Sv s ->
                    push_ctl (fun rt ->
                        rt.out_port <- Array.unsafe_get rt.slots s;
                        code_sent)
                | Dv f ->
                    push_ctl (fun rt ->
                        rt.out_port <- f rt;
                        code_sent))
            | Stmt.Drop ->
                cur.(i_ret) <- cur.(i_ret) + 1;
                push_ctl (fun _ -> code_dropped)
            | Stmt.Flood ->
                cur.(i_ret) <- cur.(i_ret) + 1;
                push_ctl (fun _ -> code_flooded)))
      block;
    push_seg ();
    match List.rev !steps with
    | [] -> fun (_ : srt) -> k_next
    | [ f ] -> f
    | steps ->
        let arr = Array.of_list steps in
        let n = Array.length arr in
        fun rt -> run_steps arr n 0 rt
  in
  let body = sblock program.Program.body in
  (* Attempt the whole-program trace (see the trace fast path section):
     follow the single expected path through the top-level body,
     compiling it to guard/action ops, staged stores, one outcome code
     and ONE charge pack covering RX framing + path + TX framing.
     Branches whose untaken arm is non-empty become guards; anything
     else off-shape (calls, loops, two live arms, a packet read after a
     staged store) bails the compilation and the NF just keeps the
     general specialized body. *)
  let trace =
    if not batch then None
    else begin
      let tcur = Array.make n_counts 0 in
      tcur.(i_alu) <- 22;
      tcur.(i_move) <- 8;
      tcur.(i_load) <- 4;
      tcur.(i_mem) <- 4;
      tcur.(i_branch) <- 2;
      let ops = ref [] in
      let stores = ref [] in
      let staged = ref [] in
      (* constant byte ranges of staged stores *)
      let dyn_store = ref false in
      (* the all-constant-offset, infallible-value store plan: one
         length check covers every store, commits run direct *)
      let fast_ok = ref true in
      let fast_commits = ref [] in
      let need_len = ref 0 in
      (* variables read by staged store offsets/values — immutable for
         the rest of the path (see the Assign bail) *)
      let store_vars = ref [] in
      (* can evaluating [e] raise (bounds, unbound var, div by zero)? *)
      let rec infallible (e : Expr.t) =
        match e with
        | Expr.Const _ | Expr.Pkt_len -> true
        | Expr.Var v -> List.mem v bound
        | Expr.Pkt_load _ -> false
        | Expr.Unop (_, a) -> infallible a
        | Expr.Binop ((Expr.Div | Expr.Rem), _, _) -> false
        | Expr.Binop (_, a, b) -> infallible a && infallible b
      in
      (* [e] must not read bytes any staged store will write *)
      let guard_load e =
        if !dyn_store || !staged <> [] then
          match load_ranges e with
          | Some [] -> ()
          | None -> raise Trace_bail
          | Some reads ->
              if
                !dyn_store
                || List.exists
                     (fun r -> List.exists (ranges_overlap r) !staged)
                     reads
              then raise Trace_bail
      in
      let push_op o = ops := o :: !ops in
      let rec walk (block : Stmt.block) : (srt -> unit) * int =
        match block with
        | [] -> raise Trace_bail (* fall-through: no outcome on this path *)
        | Stmt.Comment _ :: rest -> walk rest
        | Stmt.Assign (v, e) :: rest ->
            guard_load e;
            (* staged store expressions evaluate only when the path
               commits, so the variables they read must stay frozen
               from the store's program point on *)
            if List.mem v !store_vars then raise Trace_bail;
            (match e with
            | Expr.Pkt_load (w, Expr.Const off) when off >= 0 ->
                tcur.(i_load) <- tcur.(i_load) + 1;
                tcur.(i_mem) <- tcur.(i_mem) + 1;
                tcur.(i_move) <- tcur.(i_move) + 1;
                push_op (Tact (act_load_assign_b w off (slot_of v)))
            | _ -> (
                let value = sexpr tcur e in
                tcur.(i_move) <- tcur.(i_move) + 1;
                let s = slot_of v in
                match value with
                | Kv n ->
                    push_op (Tact (fun rt -> Array.unsafe_set rt.slots s n))
                | Sv s' ->
                    push_op
                      (Tact
                         (fun rt ->
                           Array.unsafe_set rt.slots s
                             (Array.unsafe_get rt.slots s')))
                | Dv f ->
                    push_op
                      (Tact (fun rt -> Array.unsafe_set rt.slots s (f rt)))));
            walk rest
        | Stmt.Pkt_store (w, off_e, val_e) :: rest ->
            guard_load off_e;
            guard_load val_e;
            let off = forcev (sexpr tcur off_e) in
            let value = forcev (sexpr tcur val_e) in
            tcur.(i_store) <- tcur.(i_store) + 1;
            tcur.(i_mem) <- tcur.(i_mem) + 1;
            stores :=
              {
                st_w = w;
                st_bytes = Expr.bytes_of_width w;
                st_off = off;
                st_val = value;
                st_o = 0;
                st_v = 0;
              }
              :: !stores;
            store_vars := expr_vars (expr_vars !store_vars off_e) val_e;
            (match off_e with
            | Expr.Const o when o >= 0 && infallible val_e ->
                staged := (o, Expr.bytes_of_width w) :: !staged;
                need_len := max !need_len (o + Expr.bytes_of_width w);
                fast_commits :=
                  (match w with
                  | Expr.W8 ->
                      fun rt -> Net.Packet.set_u8 rt.packet o (value rt)
                  | Expr.W16 ->
                      fun rt -> Net.Packet.set_u16 rt.packet o (value rt)
                  | Expr.W32 ->
                      fun rt -> Net.Packet.set_u32 rt.packet o (value rt)
                  | Expr.W48 ->
                      fun rt -> Net.Packet.set_u48 rt.packet o (value rt))
                  :: !fast_commits
            | Expr.Const o when o >= 0 ->
                staged := (o, Expr.bytes_of_width w) :: !staged;
                fast_ok := false
            | _ ->
                dyn_store := true;
                fast_ok := false);
            walk rest
        | Stmt.If (cond_e, then_, else_) :: rest -> (
            guard_load cond_e;
            let cond = scond tcur cond_e in
            tcur.(i_branch) <- tcur.(i_branch) + 1;
            match cond with
            | Bk true -> walk (then_ @ rest)
            | Bk false -> walk (else_ @ rest)
            | Bd c -> (
                match (block_empty then_, block_empty else_) with
                | true, true ->
                    (* either way falls through; still evaluate (the
                       condition may get stuck) *)
                    push_op (Tact (fun rt -> ignore (c rt)));
                    walk rest
                | false, true ->
                    (* expected path: the empty else arm *)
                    push_op (Tguard (c, false));
                    walk rest
                | true, false ->
                    push_op (Tguard (c, true));
                    walk rest
                | false, false -> raise Trace_bail))
        | Stmt.Return action :: _ -> (
            tcur.(i_ret) <- tcur.(i_ret) + 1;
            match action with
            | Stmt.Forward port_e -> (
                guard_load port_e;
                let port = sexpr tcur port_e in
                tcur.(i_alu) <- tcur.(i_alu) + 14;
                tcur.(i_move) <- tcur.(i_move) + 4;
                tcur.(i_store) <- tcur.(i_store) + 3;
                tcur.(i_mem) <- tcur.(i_mem) + 3;
                tcur.(i_branch) <- tcur.(i_branch) + 1;
                match port with
                | Kv p -> ((fun rt -> rt.out_port <- p), code_sent)
                | Sv s ->
                    ( (fun rt -> rt.out_port <- Array.unsafe_get rt.slots s),
                      code_sent )
                | Dv f -> ((fun rt -> rt.out_port <- f rt), code_sent))
            | Stmt.Drop ->
                tcur.(i_alu) <- tcur.(i_alu) + 4;
                tcur.(i_store) <- tcur.(i_store) + 1;
                tcur.(i_mem) <- tcur.(i_mem) + 1;
                ((fun (_ : srt) -> ()), code_dropped)
            | Stmt.Flood ->
                tcur.(i_alu) <- tcur.(i_alu) + 14;
                tcur.(i_move) <- tcur.(i_move) + 4;
                tcur.(i_store) <- tcur.(i_store) + 3;
                tcur.(i_mem) <- tcur.(i_mem) + 3;
                tcur.(i_branch) <- tcur.(i_branch) + 1;
                ((fun (_ : srt) -> ()), code_flooded))
        | (Stmt.While _ | Stmt.Call _) :: _ -> raise Trace_bail
      in
      match walk program.Program.body with
      | port_eval, tcode ->
          let chain = fuse_ops (List.rev !ops) in
          (* the path's whole charge, applied directly to the model —
             no per-packet bump/flush round-trip through [counts] *)
          let tcharge =
            let fs = ref [] in
            for i = n_counts - 1 downto 0 do
              let n = tcur.(i) in
              if n > 0 then
                fs :=
                  (if i = i_mem then fun rt -> rt.mbulk n
                   else
                     let k = Array.unsafe_get Hw.Cost.kind_of_index i in
                     fun rt -> rt.minstr k n)
                  :: !fs
            done;
            match !fs with
            | [] -> fun (_ : srt) -> ()
            | [ f ] -> f
            | fs ->
                let arr = Array.of_list fs in
                let n = Array.length arr in
                fun rt -> run_acts arr n 0 rt
          in
          let attempt =
            if !fast_ok then begin
              let commit =
                match List.rev !fast_commits with
                | [] -> None
                | [ f ] -> Some f
                | [ f; g ] ->
                    Some
                      (fun rt ->
                        f rt;
                        g rt)
                | fs ->
                    let arr = Array.of_list fs in
                    let n = Array.length arr in
                    Some (fun rt -> run_acts arr n 0 rt)
              in
              match commit with
              | None ->
                  fun rt ->
                    chain rt
                    && begin
                         port_eval rt;
                         tcharge rt;
                         true
                       end
              | Some commit ->
                  let need = !need_len in
                  fun rt ->
                    chain rt
                    && Net.Packet.length rt.packet >= need
                    && begin
                         port_eval rt;
                         commit rt;
                         tcharge rt;
                         true
                       end
            end
            else begin
              let sarr = Array.of_list (List.rev !stores) in
              let ns = Array.length sarr in
              fun rt ->
                chain rt
                && probe_stores sarr ns 0 rt
                && begin
                     port_eval rt;
                     commit_stores sarr ns 0 rt;
                     tcharge rt;
                     true
                   end
            end
          in
          Some (attempt, tcode)
      | exception Trace_bail -> None
    end
  in
  let in_port_slot = slot_of "in_port" and now_slot = slot_of "now" in
  let rt =
    {
      meter;
      packet = Net.Packet.create 0;
      slots = Array.make !next_slot 0;
      counts;
      minstr = Meter.model_instr meter;
      mmem = Meter.model_mem meter;
      mbulk =
        (match Meter.model_mem_bulk meter with
        | Some f -> f
        | None -> fun (_ : int) -> ());
      out_port = 0;
    }
  in
  let exec_general ~in_port ~now packet =
    rt.packet <- packet;
    Array.unsafe_set rt.slots in_port_slot in_port;
    Array.unsafe_set rt.slots now_slot now;
    if batch then rx_frame_b rt else rx_frame rt;
    match body rt with
    | code ->
        if code == k_next then begin
          flush rt;
          Concrete.stuck "program fell through without returning"
        end
        else begin
          (if code == code_dropped then
             if batch then tx_drop_frame_b rt else tx_drop_frame rt
           else if batch then tx_sent_frame_b rt
           else tx_sent_frame rt);
          flush rt;
          code
        end
    | exception e ->
        flush rt;
        raise e
  in
  let exec_fn =
    match trace with
    | None -> exec_general
    | Some (attempt, tcode) ->
        fun ~in_port ~now packet ->
          rt.packet <- packet;
          Array.unsafe_set rt.slots in_port_slot in_port;
          Array.unsafe_set rt.slots now_slot now;
          (* Until the attempt returns true it touches only scratch
             state (slots, out_port, store staging) and charges
             nothing, so a miss anywhere — guard, bounds, stuck — hands
             the untouched packet to the general body, which recharges
             from zero. *)
          let hit = try attempt rt with _ -> false in
          if hit then tcode else exec_general ~in_port ~now packet
  in
  let run_fn ?(in_port = 0) ?(now = 0) packet =
    let ic0 = Meter.ic meter and ma0 = Meter.ma meter in
    let cy0 = Meter.cycles meter in
    let code = exec_fn ~in_port ~now packet in
    let outcome =
      if code == code_sent then Concrete.Sent rt.out_port
      else if code == code_dropped then Concrete.Dropped
      else Concrete.Flooded
    in
    Concrete.record
      {
        Concrete.outcome;
        ic = Meter.ic meter - ic0;
        ma = Meter.ma meter - ma0;
        cycles = Meter.cycles meter - cy0;
      }
  in
  { specialized = true; run_fn; exec_fn; out_port_fn = (fun () -> rt.out_port) }

(* The generic-runner disposition: correctness-first, never zero-alloc. *)
let fallback ct ~meter ~mode =
  let run_fn = Compiled.runner ct ~meter ~mode in
  let last_port = ref 0 in
  let exec_fn ~in_port ~now packet =
    let r = run_fn ~in_port ~now packet in
    match r.Concrete.outcome with
    | Concrete.Sent p ->
        last_port := p;
        code_sent
    | Concrete.Dropped -> code_dropped
    | Concrete.Flooded -> code_flooded
  in
  { specialized = false; run_fn; exec_fn; out_port_fn = (fun () -> !last_port) }

let bind ct ~meter ~mode =
  if Meter.tracing meter || Meter.coupled_mem meter then
    fallback ct ~meter ~mode
  else
    match mode with
    | Concrete.Analysis _ -> fallback ct ~meter ~mode
    | Concrete.Production dss -> (
        match build (Compiled.program ct) dss meter with
        | t -> t
        | exception Not_specializable -> fallback ct ~meter ~mode)
