(* The concrete execution domain: one Ir.Eval instance serving both the
   plain interpreter (Interp) and the fidelity-checked replay (Replay).
   Values are machine integers, state is mutable, control is a single
   continuation per branch — the degenerate fork.  Costs are charged
   into a Meter exactly as the pre-unification interpreter did, charge
   for charge, so contract numbers are bit-identical. *)

open Ir

type mode = Production of Ds.env | Analysis of int list
type outcome = Sent of int | Dropped | Flooded
type run = { outcome : outcome; ic : int; ma : int; cycles : int }

exception Stuck of string

exception Divergence of string
(** Replay only: the concrete execution contradicted the symbolic
    path's assumed decisions — raised at the exact diverging branch. *)

let c_runs = Obs.Metrics.counter "interp.runs"
let c_instrs = Obs.Metrics.counter "interp.instructions"
let c_mems = Obs.Metrics.counter "interp.mem_accesses"
let c_calls = Obs.Metrics.counter "interp.stateful_calls"

let stuck fmt = Format.kasprintf (fun s -> raise (Stuck s)) fmt
let diverged fmt = Format.kasprintf (fun s -> raise (Divergence s)) fmt
let packet_base = 0x1000_0000
let rx_ring_base = 0x0800_0000

exception Returned of outcome

(* A replay's contract with its symbolic path: the branch decisions the
   path assumed (consumed in program order as the replay makes them)
   and the PCV loops it entered. *)
type fidelity = {
  path_id : int;
  mutable expected : bool list;  (** decisions not yet reproduced *)
  mutable consumed : int;
  mutable entered : string list;  (** PCV loops iterated, reversed *)
}

type state = {
  meter : Meter.t;
  packet : Net.Packet.t;
  env : (string, int) Hashtbl.t;
  mutable stubs : int list;  (** Analysis mode only *)
  mode : mode;
  mutable pcv_depth : int;
      (** > 0 while inside a PCV loop — branch events are suppressed
          there, mirroring the symbolic engine's single-iteration
          over-approximation of PCV bodies *)
  fidelity : fidelity option;
}

let kind_of_binop op =
  if Expr.is_binop_div op then Hw.Cost.Div
  else if Expr.is_binop_mul op then Hw.Cost.Mul
  else Hw.Cost.Alu

(* Consume one assumed decision; mismatch is a structural divergence at
   this very branch, not a post-hoc trace diff. *)
let check_decision st taken =
  match st.fidelity with
  | None -> ()
  | Some f -> (
      match f.expected with
      | [] ->
          diverged
            "replay diverged from path %d: extra branch decision %b at \
             position %d (path assumes %d decisions)"
            f.path_id taken f.consumed f.consumed
      | want :: rest ->
          if want <> taken then
            diverged
              "replay diverged from path %d at branch %d (path assumes %b, \
               replay took %b)"
              f.path_id f.consumed want taken
          else begin
            f.expected <- rest;
            f.consumed <- f.consumed + 1
          end)

module Dom = struct
  type value = int
  type nonrec state = state

  let const st n = (n, st)

  let var st v =
    match Hashtbl.find_opt st.env v with
    | Some n -> (n, st)
    | None -> stuck "unbound variable %s" v

  let pkt_len st =
    Meter.instr st.meter Hw.Cost.Move 1;
    (Net.Packet.length st.packet, st)

  let pkt_load st width ~off =
    if off < 0 then stuck "negative packet offset";
    Meter.instr st.meter Hw.Cost.Load 1;
    Meter.mem st.meter (packet_base + off);
    ( (try Net.Packet.get st.packet width off
       with Invalid_argument msg -> stuck "%s" msg),
      st )

  let unop st op v =
    Meter.instr st.meter Hw.Cost.Alu 1;
    (Semantics.apply_unop op v, st)

  let binop st op a b =
    Meter.instr st.meter (kind_of_binop op) 1;
    ( (try Semantics.apply_binop op a b
       with Semantics.Undefined msg -> stuck "%s" msg),
      st )

  let assign st v value =
    Meter.instr st.meter Hw.Cost.Move 1;
    Hashtbl.replace st.env v value;
    st

  let pkt_store st width ~off value =
    if off < 0 then stuck "negative packet offset";
    Meter.instr st.meter Hw.Cost.Store 1;
    Meter.mem st.meter ~write:true (packet_base + off);
    (try Net.Packet.set st.packet width off value
     with Invalid_argument msg -> stuck "%s" msg);
    st

  let branch st ~record ~true_first:_ c ~on_true ~on_false =
    Meter.instr st.meter Hw.Cost.Branch 1;
    let taken = c <> 0 in
    if record && st.pcv_depth = 0 then begin
      Meter.branch st.meter taken;
      check_decision st taken
    end;
    if taken then on_true st else on_false st

  let bound_exit st ~record ~bound c ~exit =
    Meter.instr st.meter Hw.Cost.Branch 1;
    let taken = c <> 0 in
    if record && st.pcv_depth = 0 then begin
      Meter.branch st.meter taken;
      check_decision st taken
    end;
    if taken then stuck "loop exceeded its static bound %d" bound else exit st

  (* [`Once_havoc]-only hooks: the concrete policy is [`Iterate]. *)
  let assume_exit _ _ ~exit:_ = assert false
  let pcv_policy = `Iterate

  let pcv_enter st ~name ~bound:_ =
    Meter.loop_head st.meter name;
    st.pcv_depth <- st.pcv_depth + 1;
    st

  let pcv_iter st ~name =
    Meter.loop_iter st.meter name;
    (match st.fidelity with
    | Some f when not (List.mem name f.entered) -> f.entered <- name :: f.entered
    | _ -> ());
    st

  let pcv_exit st ~name ~iterations =
    st.pcv_depth <- st.pcv_depth - 1;
    Meter.loop_exit st.meter name;
    Meter.observe st.meter (Perf.Pcv.v name) iterations;
    st

  let pcv_close _ = assert false
  let havoc _ _ = assert false

  let call st ~program:_ { Stmt.ret; instance; meth; args = _ } ~args ~k =
    let argv = Array.of_list args in
    Obs.Metrics.incr c_calls;
    Meter.instr st.meter Hw.Cost.Call 1;
    let result =
      match st.mode with
      | Production dss -> (Ds.find dss instance).Ds.call st.meter meth argv
      | Analysis _ -> (
          (* The analysis build links against symbolic-model stubs; the
             concrete replay feeds them the solver's values.  The extra
             overhead is the no-LTO conservative margin. *)
          Meter.instr st.meter Hw.Cost.Move Hw.Cost.cost_call_overhead;
          match st.stubs with
          | v :: rest ->
              st.stubs <- rest;
              v
          | [] -> stuck "analysis replay ran out of stub values")
    in
    Meter.instr st.meter Hw.Cost.Ret 1;
    (match st.mode with
    | Analysis _ ->
        Meter.call_event st.meter ~instance ~meth ~args:argv ~ret:result
    | Production _ -> ());
    (match ret with
    | None -> ()
    | Some v ->
        Meter.instr st.meter Hw.Cost.Move 1;
        Hashtbl.replace st.env v result);
    k st

  let pre_return st =
    Meter.instr st.meter Hw.Cost.Ret 1;
    st

  let finish _ (action : int Eval.action) =
    let outcome =
      match action with
      | Eval.Forward port -> Sent port
      | Eval.Drop -> Dropped
      | Eval.Flood -> Flooded
    in
    raise (Returned outcome)

  let fallthrough _ = stuck "program fell through without returning"
  let unsupported _ msg = stuck "%s" msg
end

module E = Eval.Make (Dom)

(* Fixed-cost RX framing: the driver reads the descriptor and prefetches
   the packet — simple control flow, constant cost (paper §3.5). *)
let charge_rx meter =
  Meter.instr meter Hw.Cost.Alu 22;
  Meter.instr meter Hw.Cost.Move 8;
  for i = 0 to 3 do
    Meter.instr meter Hw.Cost.Load 1;
    Meter.mem meter (rx_ring_base + (i * 8))
  done;
  Meter.instr meter Hw.Cost.Branch 2

let charge_tx meter outcome =
  match outcome with
  | Dropped ->
      Meter.instr meter Hw.Cost.Alu 4;
      Meter.instr meter Hw.Cost.Store 1;
      Meter.mem meter ~write:true rx_ring_base
  | Sent _ | Flooded ->
      Meter.instr meter Hw.Cost.Alu 14;
      Meter.instr meter Hw.Cost.Move 4;
      for i = 0 to 2 do
        Meter.instr meter Hw.Cost.Store 1;
        Meter.mem meter ~write:true (rx_ring_base + 64 + (i * 8))
      done;
      Meter.instr meter Hw.Cost.Branch 1

let process ?fidelity ~meter ~mode ~in_port ~now (program : Program.t) packet =
  let st =
    {
      meter;
      packet;
      env = Hashtbl.create 16;
      stubs = (match mode with Analysis stubs -> stubs | _ -> []);
      mode;
      pcv_depth = 0;
      fidelity;
    }
  in
  Hashtbl.replace st.env "in_port" in_port;
  Hashtbl.replace st.env "now" now;
  match E.run st program with
  | () -> stuck "program fell through without returning"
  | exception Returned outcome -> outcome

let record (r : run) =
  Obs.Metrics.incr c_runs;
  Obs.Metrics.add c_instrs r.ic;
  Obs.Metrics.add c_mems r.ma;
  r

let run_once ?fidelity ~meter ~mode ~in_port ~now (program : Program.t) packet
    =
  let ic0 = Meter.ic meter and ma0 = Meter.ma meter in
  let cy0 = Meter.cycles meter in
  charge_rx meter;
  let outcome = process ?fidelity ~meter ~mode ~in_port ~now program packet in
  charge_tx meter outcome;
  record
    {
      outcome;
      ic = Meter.ic meter - ic0;
      ma = Meter.ma meter - ma0;
      cycles = Meter.cycles meter - cy0;
    }
