(* The closure-compiled concrete hot path.

   [compile] translates a validated [Ir.Program.t] once into a tree of
   OCaml closures and runs each packet with zero interpretive dispatch:
   no per-statement match on the IR, no [(value, state)] tuple per
   expression node, no hashtable environment.  Variable names are
   resolved at compile time to integer slots in a flat frame, packet
   loads and stores are specialized per [Expr.width], and every meter
   charge of [Concrete] is fused into the closure that owes it.

   Semantics are bit-identical to [Concrete]: the same charges in the
   same order (IC, MA, cycles), the same outcomes, PCV observations,
   branch events and [Stuck] messages.  Two deliberate asymmetries make
   that cheap to preserve:

   - Constant folding precomputes the *value* of a constant subtree but
     still replays its exact charge sequence at run time, so folding
     never changes a contract number.
   - [Concrete]'s dynamic [pcv_depth] check (branch events suppressed
     inside PCV loops) becomes a static [in_pcv] compilation flag: PCV
     membership is lexical and stateful calls never run IR, so the
     dynamic counter can only ever agree with the static flag.

   Each program is compiled into TWO bodies sharing the slot layout:

   - an event-faithful body that issues every [Meter] charge exactly
     as [Concrete] would — same calls, same order — used whenever the
     meter is tracing, so contract derivation and the differential
     tests see a bit-identical event stream;
   - a deferred-charge body for the untraced hot path: instruction
     charges accumulate in a per-kind counter array and reach the
     model in batches, and the event-only meter calls (branch and
     loop markers) are elided outright.  Every model's [instr] is
     linear in its count argument (realistic branch-mispredict
     accounting telescopes over the cumulative branch count), so
     batching is exact for IC, MA and cycles — with one caveat: a
     model whose [mem] reads instruction-count state
     ({!Hw.Model.t.coupled_mem}, the realistic simulator's burst
     window) needs the deferred counts flushed before every memory
     charge, which the fast body does conditionally.  Counts are also
     flushed on every exit — return, stuck, fall-through — so meter
     state is exact at any point the caller can observe it.

   The compiled form supports both modes but no fidelity checking:
   path replay stays on [Replay] (the interpreter); this module is the
   production replay path the Distiller and the benchmarks drive. *)

open Ir

(* Per-packet runtime state: what survives of [Concrete.state] once
   names, widths and PCV depth are resolved at compile time. *)
type rt = {
  meter : Meter.t;
  mutable packet : Net.Packet.t;  (** mutable so {!runner} can reuse [rt] *)
  frame : int array;
      (** indices [0, nkinds) hold the deferred per-kind instr charges
          (fast body); variable slots start at [nkinds] *)
  minstr : Hw.Cost.kind -> int -> unit;
  mmem : addr:int -> write:bool -> dependent:bool -> unit;
      (** charge entry points for the fast body: the model's raw
          closures when untraced, the full [Meter] wrappers when the
          meter traces (so a traced caller of the fast helpers — the
          RX/TX framing in [run_batch] — still records events) *)
  flush_mem : bool;  (** model couples mem to instr counts — flush first *)
  mutable stubs : int list;  (** Analysis mode only *)
  mode : Concrete.mode;
}

(* The fixed {!Hw.Cost.kind} enumeration for the deferred-count array —
   shared with the dslib fast paths through {!Ds.sink}. *)
let nkinds = Hw.Cost.nkinds
let kind_index = Hw.Cost.kind_index
let kind_of_index = Hw.Cost.kind_of_index

let bump rt i n =
  let c = rt.frame in
  Array.unsafe_set c i (Array.unsafe_get c i + n)

let flush rt =
  let c = rt.frame in
  for i = 0 to nkinds - 1 do
    let n = Array.unsafe_get c i in
    if n > 0 then begin
      Array.unsafe_set c i 0;
      rt.minstr (Array.unsafe_get kind_of_index i) n
    end
  done

(* A deferred-mode memory charge: coupled models must see the pending
   instruction counts before pricing the access. *)
let charge_mem rt ~write addr =
  if rt.flush_mem then flush rt;
  rt.mmem ~addr ~write ~dependent:false

let i_alu = kind_index Hw.Cost.Alu
let i_move = kind_index Hw.Cost.Move
let i_load = kind_index Hw.Cost.Load
let i_store = kind_index Hw.Cost.Store
let i_branch = kind_index Hw.Cost.Branch
let i_call = kind_index Hw.Cost.Call
let i_ret = kind_index Hw.Cost.Ret

(* Deferred-mode copies of [Concrete.charge_rx]/[charge_tx]: the same
   charges, bumped instead of issued. *)
let fast_charge_rx rt =
  bump rt i_alu 22;
  bump rt i_move 8;
  for i = 0 to 3 do
    bump rt i_load 1;
    charge_mem rt ~write:false (Concrete.rx_ring_base + (i * 8))
  done;
  bump rt i_branch 2

let fast_charge_tx rt outcome =
  match outcome with
  | Concrete.Dropped ->
      bump rt i_alu 4;
      bump rt i_store 1;
      charge_mem rt ~write:true Concrete.rx_ring_base
  | Concrete.Sent _ | Concrete.Flooded ->
      bump rt i_alu 14;
      bump rt i_move 4;
      for i = 0 to 2 do
        bump rt i_store 1;
        charge_mem rt ~write:true (Concrete.rx_ring_base + 64 + (i * 8))
      done;
      bump rt i_branch 1

(* A compiled expression: either a subtree whose value is known at
   compile time — paired with a closure replaying the charges the
   interpreter would have made computing it — or a closure producing
   the value (and charging) at run time. *)
type cexpr = Known of int * (rt -> unit) | Dyn of (rt -> int)

type t = {
  program : Program.t;
  nslots : int;
  in_port_slot : int;
  now_slot : int;
  body : rt -> unit;  (** event-faithful; raises [Concrete.Returned] *)
  fast_body : rt -> unit;  (** deferred charges, no events; same outcomes *)
}

let no_charge (_ : rt) = ()

let force = function
  | Known (v, ch) when ch == no_charge -> fun _ -> v
  | Known (v, ch) ->
      fun rt ->
        ch rt;
        v
  | Dyn f -> f

let compile (program : Program.t) =
  let slots = Hashtbl.create 16 in
  (* slots live above the deferred-count prefix of the frame *)
  let next_slot = ref nkinds in
  let slot_of v =
    match Hashtbl.find_opt slots v with
    | Some s -> s
    | None ->
        let s = !next_slot in
        incr next_slot;
        Hashtbl.add slots v s;
        s
  in
  List.iter (fun v -> ignore (slot_of v)) Program.input_vars;
  let bound =
    List.fold_left
      (fun set v -> ignore (slot_of v); v :: set)
      Program.input_vars
      (Eval.assigned_vars program.Program.body)
  in
  let rec compile_expr (e : Expr.t) : cexpr =
    match e with
    | Expr.Const n -> Known (n, no_charge)
    | Expr.Var v ->
        if List.mem v bound then
          let s = slot_of v in
          Dyn (fun rt -> Array.unsafe_get rt.frame s)
        else Dyn (fun _ -> Concrete.stuck "unbound variable %s" v)
    | Expr.Pkt_len ->
        Dyn
          (fun rt ->
            Meter.instr rt.meter Hw.Cost.Move 1;
            Net.Packet.length rt.packet)
    | Expr.Pkt_load (w, off_e) -> (
        let load =
          match w with
          | Expr.W8 -> Net.Packet.get_u8
          | Expr.W16 -> Net.Packet.get_u16
          | Expr.W32 -> Net.Packet.get_u32
          | Expr.W48 -> Net.Packet.get_u48
        in
        match compile_expr off_e with
        | Known (off, ch) when off >= 0 ->
            (* constant non-negative offset: the bounds check against
               the packet length still runs inside the accessor *)
            let addr = Concrete.packet_base + off in
            Dyn
              (fun rt ->
                ch rt;
                Meter.instr rt.meter Hw.Cost.Load 1;
                Meter.mem rt.meter addr;
                try load rt.packet off
                with Invalid_argument msg -> Concrete.stuck "%s" msg)
        | coff ->
            let off = force coff in
            Dyn
              (fun rt ->
                let off = off rt in
                if off < 0 then Concrete.stuck "negative packet offset";
                Meter.instr rt.meter Hw.Cost.Load 1;
                Meter.mem rt.meter (Concrete.packet_base + off);
                try load rt.packet off
                with Invalid_argument msg -> Concrete.stuck "%s" msg))
    | Expr.Unop (op, a) -> (
        match compile_expr a with
        | Known (v, ch) ->
            Known
              ( Semantics.apply_unop op v,
                fun rt ->
                  ch rt;
                  Meter.instr rt.meter Hw.Cost.Alu 1 )
        | Dyn f ->
            Dyn
              (fun rt ->
                let v = f rt in
                Meter.instr rt.meter Hw.Cost.Alu 1;
                Semantics.apply_unop op v))
    | Expr.Binop (op, a, b) -> (
        let kind = Concrete.kind_of_binop op in
        match (compile_expr a, compile_expr b) with
        | Known (va, cha), Known (vb, chb) -> (
            let ch rt =
              cha rt;
              chb rt;
              Meter.instr rt.meter kind 1
            in
            match Semantics.apply_binop op va vb with
            | v -> Known (v, ch)
            | exception Semantics.Undefined msg ->
                Dyn
                  (fun rt ->
                    ch rt;
                    Concrete.stuck "%s" msg))
        | ca, cb ->
            let fa = force ca and fb = force cb in
            Dyn
              (fun rt ->
                let va = fa rt in
                let vb = fb rt in
                Meter.instr rt.meter kind 1;
                try Semantics.apply_binop op va vb
                with Semantics.Undefined msg -> Concrete.stuck "%s" msg))
  in
  let rec compile_block ~in_pcv (block : Stmt.block) : rt -> unit =
    List.fold_right
      (fun stmt k ->
        let c = compile_stmt ~in_pcv stmt in
        fun rt ->
          c rt;
          k rt)
      block no_charge
  and compile_stmt ~in_pcv (stmt : Stmt.t) : rt -> unit =
    match stmt with
    | Stmt.Comment _ -> no_charge
    | Stmt.Assign (v, e) ->
        let value = force (compile_expr e) in
        let s = slot_of v in
        fun rt ->
          let value = value rt in
          Meter.instr rt.meter Hw.Cost.Move 1;
          Array.unsafe_set rt.frame s value
    | Stmt.Pkt_store (w, off_e, val_e) ->
        let store =
          match w with
          | Expr.W8 -> Net.Packet.set_u8
          | Expr.W16 -> Net.Packet.set_u16
          | Expr.W32 -> Net.Packet.set_u32
          | Expr.W48 -> Net.Packet.set_u48
        in
        let off = force (compile_expr off_e) in
        let value = force (compile_expr val_e) in
        fun rt ->
          let off = off rt in
          let value = value rt in
          if off < 0 then Concrete.stuck "negative packet offset";
          Meter.instr rt.meter Hw.Cost.Store 1;
          Meter.mem rt.meter ~write:true (Concrete.packet_base + off);
          (try store rt.packet off value
           with Invalid_argument msg -> Concrete.stuck "%s" msg)
    | Stmt.If (cond_e, then_, else_) ->
        let cond = force (compile_expr cond_e) in
        let cthen = compile_block ~in_pcv then_ in
        let celse = compile_block ~in_pcv else_ in
        if in_pcv then fun rt ->
          let c = cond rt in
          Meter.instr rt.meter Hw.Cost.Branch 1;
          if c <> 0 then cthen rt else celse rt
        else fun rt ->
          let c = cond rt in
          Meter.instr rt.meter Hw.Cost.Branch 1;
          let taken = c <> 0 in
          Meter.branch rt.meter taken;
          if taken then cthen rt else celse rt
    | Stmt.While (Stmt.Unroll bound, cond_e, body) ->
        let cond = force (compile_expr cond_e) in
        let cbody = compile_block ~in_pcv body in
        let record = not in_pcv in
        fun rt ->
          let rec iteration k =
            let c = cond rt in
            Meter.instr rt.meter Hw.Cost.Branch 1;
            let taken = c <> 0 in
            if record then Meter.branch rt.meter taken;
            if k >= bound then begin
              if taken then
                Concrete.stuck "loop exceeded its static bound %d" bound
            end
            else if taken then begin
              cbody rt;
              iteration (k + 1)
            end
          in
          iteration 0
    | Stmt.While (Stmt.Pcv_loop (name, bound), cond_e, body) ->
        let cond = force (compile_expr cond_e) in
        let cbody = compile_block ~in_pcv:true body in
        let pcv = Perf.Pcv.v name in
        fun rt ->
          Meter.loop_head rt.meter name;
          let rec iteration k =
            let c = cond rt in
            Meter.instr rt.meter Hw.Cost.Branch 1;
            if k >= bound then begin
              if c <> 0 then
                Concrete.stuck "loop exceeded its static bound %d" bound;
              exit k
            end
            else if c <> 0 then begin
              Meter.loop_iter rt.meter name;
              cbody rt;
              iteration (k + 1)
            end
            else exit k
          and exit iterations =
            Meter.loop_exit rt.meter name;
            Meter.observe rt.meter pcv iterations
          in
          iteration 0
    | Stmt.Call { ret; instance; meth; args } ->
        let cargs =
          Array.of_list (List.map (fun a -> force (compile_expr a)) args)
        in
        let nargs = Array.length cargs in
        let ret_slot = Option.map slot_of ret in
        fun rt ->
          let argv = Array.make nargs 0 in
          for i = 0 to nargs - 1 do
            argv.(i) <- (Array.unsafe_get cargs i) rt
          done;
          Obs.Metrics.incr Concrete.c_calls;
          Meter.instr rt.meter Hw.Cost.Call 1;
          let result =
            match rt.mode with
            | Concrete.Production dss ->
                (Ds.find dss instance).Ds.call rt.meter meth argv
            | Concrete.Analysis _ -> (
                Meter.instr rt.meter Hw.Cost.Move Hw.Cost.cost_call_overhead;
                match rt.stubs with
                | v :: rest ->
                    rt.stubs <- rest;
                    v
                | [] -> Concrete.stuck "analysis replay ran out of stub values")
          in
          Meter.instr rt.meter Hw.Cost.Ret 1;
          (match rt.mode with
          | Concrete.Analysis _ ->
              Meter.call_event rt.meter ~instance ~meth ~args:argv ~ret:result
          | Concrete.Production _ -> ());
          (match ret_slot with
          | None -> ()
          | Some s ->
              Meter.instr rt.meter Hw.Cost.Move 1;
              Array.unsafe_set rt.frame s result)
    | Stmt.Return action -> (
        match action with
        | Stmt.Forward port_e ->
            let port = force (compile_expr port_e) in
            fun rt ->
              Meter.instr rt.meter Hw.Cost.Ret 1;
              raise (Concrete.Returned (Concrete.Sent (port rt)))
        | Stmt.Drop ->
            fun rt ->
              Meter.instr rt.meter Hw.Cost.Ret 1;
              raise (Concrete.Returned Concrete.Dropped)
        | Stmt.Flood ->
            fun rt ->
              Meter.instr rt.meter Hw.Cost.Ret 1;
              raise (Concrete.Returned Concrete.Flooded))
  in
  (* The deferred-charge compiler: same value semantics and the same
     charge multiset as the faithful body above, but instruction
     charges are [bump]ed into [rt.counts] instead of issued per node,
     memory charges go through [charge_mem], and the event-only meter
     calls (branch records, loop markers, call events) vanish — which
     also makes [in_pcv] moot here.  Bumps happen at exactly the
     program points the faithful body charges at, so the deferred
     counts are exact at every raise site. *)
  let rec fast_expr (e : Expr.t) : cexpr =
    match e with
    | Expr.Const n -> Known (n, no_charge)
    | Expr.Var v ->
        if List.mem v bound then
          let s = slot_of v in
          Dyn (fun rt -> Array.unsafe_get rt.frame s)
        else Dyn (fun _ -> Concrete.stuck "unbound variable %s" v)
    | Expr.Pkt_len ->
        Dyn
          (fun rt ->
            bump rt i_move 1;
            Net.Packet.length rt.packet)
    | Expr.Pkt_load (w, off_e) -> (
        let load =
          match w with
          | Expr.W8 -> Net.Packet.get_u8
          | Expr.W16 -> Net.Packet.get_u16
          | Expr.W32 -> Net.Packet.get_u32
          | Expr.W48 -> Net.Packet.get_u48
        in
        match fast_expr off_e with
        | Known (off, ch) when off >= 0 ->
            let addr = Concrete.packet_base + off in
            Dyn
              (fun rt ->
                ch rt;
                bump rt i_load 1;
                charge_mem rt ~write:false addr;
                try load rt.packet off
                with Invalid_argument msg -> Concrete.stuck "%s" msg)
        | coff ->
            let off = force coff in
            Dyn
              (fun rt ->
                let off = off rt in
                if off < 0 then Concrete.stuck "negative packet offset";
                bump rt i_load 1;
                charge_mem rt ~write:false (Concrete.packet_base + off);
                try load rt.packet off
                with Invalid_argument msg -> Concrete.stuck "%s" msg))
    | Expr.Unop (op, a) -> (
        match fast_expr a with
        | Known (v, ch) ->
            Known
              ( Semantics.apply_unop op v,
                fun rt ->
                  ch rt;
                  bump rt i_alu 1 )
        | Dyn f ->
            Dyn
              (fun rt ->
                let v = f rt in
                bump rt i_alu 1;
                Semantics.apply_unop op v))
    | Expr.Binop (op, a, b) -> (
        let ki = kind_index (Concrete.kind_of_binop op) in
        match (fast_expr a, fast_expr b) with
        | Known (va, cha), Known (vb, chb) -> (
            let ch rt =
              cha rt;
              chb rt;
              bump rt ki 1
            in
            match Semantics.apply_binop op va vb with
            | v -> Known (v, ch)
            | exception Semantics.Undefined msg ->
                Dyn
                  (fun rt ->
                    ch rt;
                    Concrete.stuck "%s" msg))
        | Known (va, cha), Dyn fb when cha == no_charge ->
            (* constant-operand forms skip a closure call on the hot
               path; evaluation and charge order are unchanged *)
            Dyn
              (fun rt ->
                let vb = fb rt in
                bump rt ki 1;
                try Semantics.apply_binop op va vb
                with Semantics.Undefined msg -> Concrete.stuck "%s" msg)
        | Dyn fa, Known (vb, chb) when chb == no_charge ->
            Dyn
              (fun rt ->
                let va = fa rt in
                bump rt ki 1;
                try Semantics.apply_binop op va vb
                with Semantics.Undefined msg -> Concrete.stuck "%s" msg)
        | ca, cb ->
            let fa = force ca and fb = force cb in
            Dyn
              (fun rt ->
                let va = fa rt in
                let vb = fb rt in
                bump rt ki 1;
                try Semantics.apply_binop op va vb
                with Semantics.Undefined msg -> Concrete.stuck "%s" msg))
  in
  let rec fast_block (block : Stmt.block) : rt -> unit =
    List.fold_right
      (fun stmt k ->
        let c = fast_stmt stmt in
        fun rt ->
          c rt;
          k rt)
      block no_charge
  and fast_stmt (stmt : Stmt.t) : rt -> unit =
    match stmt with
    | Stmt.Comment _ -> no_charge
    | Stmt.Assign (v, e) -> (
        let s = slot_of v in
        match fast_expr e with
        | Known (value, ch) when ch == no_charge ->
            fun rt ->
              bump rt i_move 1;
              Array.unsafe_set rt.frame s value
        | Known (value, ch) ->
            fun rt ->
              ch rt;
              bump rt i_move 1;
              Array.unsafe_set rt.frame s value
        | Dyn f ->
            fun rt ->
              let value = f rt in
              bump rt i_move 1;
              Array.unsafe_set rt.frame s value)
    | Stmt.Pkt_store (w, off_e, val_e) ->
        let store =
          match w with
          | Expr.W8 -> Net.Packet.set_u8
          | Expr.W16 -> Net.Packet.set_u16
          | Expr.W32 -> Net.Packet.set_u32
          | Expr.W48 -> Net.Packet.set_u48
        in
        let off = force (fast_expr off_e) in
        let value = force (fast_expr val_e) in
        fun rt ->
          let off = off rt in
          let value = value rt in
          if off < 0 then Concrete.stuck "negative packet offset";
          bump rt i_store 1;
          charge_mem rt ~write:true (Concrete.packet_base + off);
          (try store rt.packet off value
           with Invalid_argument msg -> Concrete.stuck "%s" msg)
    | Stmt.If (cond_e, then_, else_) ->
        let cond = force (fast_expr cond_e) in
        let cthen = fast_block then_ in
        let celse = fast_block else_ in
        fun rt ->
          let c = cond rt in
          bump rt i_branch 1;
          if c <> 0 then cthen rt else celse rt
    | Stmt.While (Stmt.Unroll bound, cond_e, body) ->
        let cond = force (fast_expr cond_e) in
        let cbody = fast_block body in
        fun rt ->
          let rec iteration k =
            let c = cond rt in
            bump rt i_branch 1;
            if k >= bound then begin
              if c <> 0 then
                Concrete.stuck "loop exceeded its static bound %d" bound
            end
            else if c <> 0 then begin
              cbody rt;
              iteration (k + 1)
            end
          in
          iteration 0
    | Stmt.While (Stmt.Pcv_loop (name, bound), cond_e, body) ->
        let cond = force (fast_expr cond_e) in
        let cbody = fast_block body in
        let pcv = Perf.Pcv.v name in
        fun rt ->
          let rec iteration k =
            let c = cond rt in
            bump rt i_branch 1;
            if k >= bound then begin
              if c <> 0 then
                Concrete.stuck "loop exceeded its static bound %d" bound;
              Meter.observe rt.meter pcv k
            end
            else if c <> 0 then begin
              cbody rt;
              iteration (k + 1)
            end
            else Meter.observe rt.meter pcv k
          in
          iteration 0
    | Stmt.Call { ret; instance; meth; args } ->
        let cargs = Array.of_list (List.map (fun a -> force (fast_expr a)) args) in
        let nargs = Array.length cargs in
        let ret_slot = Option.map slot_of ret in
        fun rt ->
          let argv = Array.make nargs 0 in
          for i = 0 to nargs - 1 do
            argv.(i) <- (Array.unsafe_get cargs i) rt
          done;
          Obs.Metrics.incr Concrete.c_calls;
          bump rt i_call 1;
          let result =
            match rt.mode with
            | Concrete.Production dss ->
                (* the callee charges the meter directly, so pending
                   counts must land first when the model couples them *)
                if rt.flush_mem then flush rt;
                (Ds.find dss instance).Ds.call rt.meter meth argv
            | Concrete.Analysis _ -> (
                bump rt i_move Hw.Cost.cost_call_overhead;
                match rt.stubs with
                | v :: rest ->
                    rt.stubs <- rest;
                    v
                | [] -> Concrete.stuck "analysis replay ran out of stub values")
          in
          bump rt i_ret 1;
          (match ret_slot with
          | None -> ()
          | Some s ->
              bump rt i_move 1;
              Array.unsafe_set rt.frame s result)
    | Stmt.Return action -> (
        match action with
        | Stmt.Forward port_e ->
            let port = force (fast_expr port_e) in
            fun rt ->
              bump rt i_ret 1;
              raise (Concrete.Returned (Concrete.Sent (port rt)))
        | Stmt.Drop ->
            fun rt ->
              bump rt i_ret 1;
              raise (Concrete.Returned Concrete.Dropped)
        | Stmt.Flood ->
            fun rt ->
              bump rt i_ret 1;
              raise (Concrete.Returned Concrete.Flooded))
  in
  let body = compile_block ~in_pcv:false program.Program.body in
  let fast_body = fast_block program.Program.body in
  {
    program;
    nslots = !next_slot;
    in_port_slot = slot_of "in_port";
    now_slot = slot_of "now";
    body;
    fast_body;
  }

let program t = t.program

(* a fresh frame per packet keeps compiled programs shareable across
   [Pool] domains; [Program.validate] guarantees no slot is read
   before it is written, so zeros need no per-packet refresh *)
let make_rt t ~meter ~mode ~in_port ~now packet =
  let frame = Array.make t.nslots 0 in
  frame.(t.in_port_slot) <- in_port;
  frame.(t.now_slot) <- now;
  let minstr, mmem =
    if Meter.tracing meter then
      ( (fun kind n -> Meter.instr meter kind n),
        fun ~addr ~write ~dependent -> Meter.mem meter ~write ~dependent addr )
    else (Meter.model_instr meter, Meter.model_mem meter)
  in
  {
    meter;
    packet;
    frame;
    minstr;
    mmem;
    flush_mem = Meter.coupled_mem meter;
    stubs = (match mode with Concrete.Analysis stubs -> stubs | _ -> []);
    mode;
  }

let process t ~fast ~meter ~mode ~in_port ~now packet =
  let rt = make_rt t ~meter ~mode ~in_port ~now packet in
  if fast then
    (* flush on every exit — normal, stuck or fall-through — so the
       meter is exact whenever the caller can observe it *)
    match t.fast_body rt with
    | () ->
        flush rt;
        Concrete.stuck "program fell through without returning"
    | exception Concrete.Returned outcome ->
        flush rt;
        outcome
    | exception e ->
        flush rt;
        raise e
  else
    match t.body rt with
    | () -> Concrete.stuck "program fell through without returning"
    | exception Concrete.Returned outcome -> outcome

(* One event-faithful packet: RX framing, body, TX framing — exactly
   [Concrete.process_packet]. *)
let faithful_packet t rt =
  Concrete.charge_rx rt.meter;
  let outcome =
    match t.body rt with
    | () -> Concrete.stuck "program fell through without returning"
    | exception Concrete.Returned outcome -> outcome
  in
  Concrete.charge_tx rt.meter outcome;
  outcome

(* One deferred-charge packet: a single deferral window spans RX, the
   body and TX — nothing can observe the meter in between, and every
   abnormal exit flushes so [Stuck] handlers see exact state. *)
let fast_packet t rt =
  fast_charge_rx rt;
  let outcome =
    match t.fast_body rt with
    | () ->
        flush rt;
        Concrete.stuck "program fell through without returning"
    | exception Concrete.Returned outcome -> outcome
    | exception e ->
        flush rt;
        raise e
  in
  fast_charge_tx rt outcome;
  flush rt;
  outcome

let metered_packet t rt ~fast =
  let meter = rt.meter in
  let ic0 = Meter.ic meter and ma0 = Meter.ma meter in
  let cy0 = Meter.cycles meter in
  let outcome = if fast then fast_packet t rt else faithful_packet t rt in
  Concrete.record
    {
      Concrete.outcome;
      ic = Meter.ic meter - ic0;
      ma = Meter.ma meter - ma0;
      cycles = Meter.cycles meter - cy0;
    }

let run t ~meter ~mode ?(in_port = 0) ?(now = 0) packet =
  let rt = make_rt t ~meter ~mode ~in_port ~now packet in
  metered_packet t rt ~fast:(not (Meter.tracing meter))

(* The steady-state entry point: allocate the frame and runtime record
   once per (meter, mode) stream and replay every packet through them.
   Reuse is sound because [Program.validate] guarantees no slot is read
   before the current packet writes it, and [flush] leaves every
   deferred count at zero on each exit. *)
let runner t ~meter ~mode =
  let rt = make_rt t ~meter ~mode ~in_port:0 ~now:0 (Net.Packet.create 0) in
  let frame = rt.frame in
  let stubs0 = rt.stubs in
  let fast = not (Meter.tracing meter) in
  fun ?(in_port = 0) ?(now = 0) packet ->
    rt.packet <- packet;
    frame.(t.in_port_slot) <- in_port;
    frame.(t.now_slot) <- now;
    if stubs0 <> [] then rt.stubs <- stubs0;
    metered_packet t rt ~fast

let run_batch t ~meter ~mode batch =
  (match mode with
  | Concrete.Analysis _ ->
      invalid_arg "Compiled.run_batch: analysis replay is per-path, not batched"
  | Concrete.Production _ -> ());
  let fast = not (Meter.tracing meter) in
  Concrete.charge_rx meter;
  let runs =
    List.map
      (fun (packet, in_port, now) ->
        let ic0 = Meter.ic meter and ma0 = Meter.ma meter in
        let cy0 = Meter.cycles meter in
        let outcome = process t ~fast ~meter ~mode ~in_port ~now packet in
        Concrete.record
          {
            Concrete.outcome;
            ic = Meter.ic meter - ic0;
            ma = Meter.ma meter - ma0;
            cycles = Meter.cycles meter - cy0;
          })
      batch
  in
  List.iter
    (fun r ->
      if r.Concrete.outcome = Concrete.Dropped then
        Concrete.charge_tx meter Concrete.Dropped)
    runs;
  if List.exists (fun r -> r.Concrete.outcome <> Concrete.Dropped) runs then
    Concrete.charge_tx meter (Concrete.Sent 0);
  runs
