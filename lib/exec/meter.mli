(** The cost meter — this repository's stand-in for Intel Pin.

    Every instruction and memory access executed by the interpreter and by
    the stateful data-structure implementations is charged through a
    meter.  A meter wraps a hardware model (which prices the cycles) and
    optionally records the full event trace, which is what the BOLT
    analysis walks to build contracts (paper Alg. 2, lines 7–15).

    Meters also log PCV observations: each data-structure call reports the
    concrete values its PCVs took (collisions seen, entries expired…),
    which is exactly the instrumentation the Distiller relies on
    (paper §4). *)

type event =
  | E_instr of Hw.Cost.kind * int
  | E_mem of { addr : int; write : bool; dependent : bool }
  | E_call of { instance : string; meth : string; args : int array; ret : int }
  | E_loop_head of string  (** entering a PCV loop *)
  | E_loop_iter of string  (** starting one iteration *)
  | E_loop_exit of string
  | E_branch of bool
      (** one [If]/[Unroll] condition evaluation (suppressed inside PCV
          loops) — the replay's record of which symbolic path it actually
          followed *)

type t

val create : ?trace:bool -> Hw.Model.t -> t
(** [create model] makes a meter charging into [model].  [trace] (default
    [false]) additionally records the event list. *)

val instr : t -> Hw.Cost.kind -> int -> unit
val mem : t -> ?write:bool -> ?dependent:bool -> int -> unit
val call_event : t -> instance:string -> meth:string -> args:int array ->
  ret:int -> unit
val branch : t -> bool -> unit
val loop_head : t -> string -> unit
val loop_iter : t -> string -> unit
val loop_exit : t -> string -> unit

val observe : t -> Perf.Pcv.t -> int -> unit
(** Log one PCV observation (one data-structure call's worth). *)

val tracing : t -> bool
(** Whether this meter records the event trace — clients with a cheaper
    charging discipline that cannot reproduce the per-event stream
    (e.g. {!Compiled}'s deferred instruction accounting) must fall back
    to event-faithful charging when this is set. *)

val coupled_mem : t -> bool
(** The wrapped model's {!Hw.Model.t.coupled_mem}: deferred [instr]
    charges must be flushed before every [mem] charge. *)

val model_instr : t -> Hw.Cost.kind -> int -> unit
(** The wrapped model's raw charge closure.  Bypasses the event trace,
    so only sound on a meter for which {!tracing} is [false]. *)

val model_mem : t -> addr:int -> write:bool -> dependent:bool -> unit
(** Raw memory-charge closure; same caveat as {!model_instr}. *)

val model_mem_bulk : t -> (int -> unit) option
(** The wrapped model's {!Hw.Model.t.mem_bulk}: [Some f] only when the
    model prices accesses independently of their address, so statically
    countable accesses may be batched. *)

val ic : t -> int
val ma : t -> int
val cycles : t -> int
val events : t -> event list
(** In program order; empty unless tracing. *)

val observations : t -> (Perf.Pcv.t * int) list
(** All observations, in program order. *)

val pcv_max : t -> Perf.Pcv.binding
(** Per-PCV maximum over the observations — the conservative binding to
    evaluate a contract at. *)

val pcv_sum : t -> Perf.Pcv.binding
val reset_observations : t -> unit
(** Clear observations (and trace), keeping cumulative costs — used
    between packets of a run. *)
