(** Fidelity-checked concrete replay of a symbolic path.

    A witness packet satisfies a path's constraints, but
    over-approximated values (an overlapping-width packet read, a
    masked unknown) let the solver pick values no real packet realises
    — replayed concretely, such a witness can take a different branch
    somewhere, and its trace then belongs to a different path.  Pricing
    it would attribute the wrong cost.

    This runner makes path fidelity structural instead of post-hoc: it
    is the same {!Ir.Eval} concrete domain as {!Interp}, in [Analysis]
    mode, but every recorded branch consumes the next of the path's
    assumed [decisions] {e as it is taken} — the first disagreement
    raises {!Divergence} at that very statement.  At the end, the set
    of PCV loops actually entered must equal the path's assumed
    [loops], and no assumed decision may be left over. *)

exception Divergence of string

val run :
  meter:Meter.t ->
  stubs:int list ->
  path_id:int ->
  decisions:bool list ->
  loops:string list ->
  ?in_port:int ->
  ?now:int ->
  Ir.Program.t ->
  Net.Packet.t ->
  Interp.run
(** [run] replays one packet in [Analysis] mode against the assumptions
    of the path identified by [path_id] (used only in messages).
    [decisions] are the branch outcomes the path assumed, in program
    order, PCV interiors excluded; [loops] the names of the PCV loops
    it entered.  Raises {!Divergence} on any mismatch and
    {!Interp.Stuck} exactly as a plain run would. *)
