(* A small fixed-size domain pool with a deterministic ordered [map].

   Work items are claimed with an atomic counter and results land in a
   slot array indexed by item position, so the output order (and any
   exception raised) is independent of scheduling.  Workers must be
   isolated: [f] may share immutable data freely but must create its own
   mutable state (meters, hardware models, RNGs) per item. *)

let env_jobs () =
  match Sys.getenv_opt "BOLT_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

type 'a slot = Empty | Value of 'a | Error of exn * Printexc.raw_backtrace

let c_queued = Obs.Metrics.counter "pool.tasks_queued"
let c_completed = Obs.Metrics.counter "pool.tasks_completed"
let g_jobs = Obs.Metrics.gauge "pool.max_jobs"
let g_workers = Obs.Metrics.gauge "pool.max_workers"

(* collect a slot array, surfacing the lowest-indexed failure as a
   serial run would *)
let harvest slots =
  Array.iter
    (function
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt
      | Empty | Value _ -> ())
    slots;
  Array.to_list
    (Array.map (function Value v -> v | Empty | Error _ -> assert false)
       slots)

(* One worker per index for the worker's whole lifetime: the dataplane's
   shard loops, where each domain drains its own queue rather than
   stealing items.  Unlike [map] there is no clamp to the hardware
   thread count — a 4-shard plan on a 1-core host still runs 4 domains
   (timesharing), which is exactly what the scalability contract's
   [max(f, 1/cores)] bottleneck term models. *)
let run_each ~n f =
  if n <= 0 then []
  else begin
    Obs.Metrics.set_max g_workers n;
    if n = 1 then [ f 0 ]
    else begin
      let slots = Array.make n Empty in
      let parent_span = Obs.Span.current () in
      let worker i () =
        Obs.Span.adopt parent_span @@ fun () ->
        Obs.Span.with_ ~cat:"pool" "pool.shard_worker"
          ~args:(fun () -> [ ("worker", string_of_int i) ])
        @@ fun () ->
        slots.(i) <-
          (match f i with
          | v -> Value v
          | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      in
      let helpers =
        List.init (n - 1) (fun i -> Domain.spawn (worker (i + 1)))
      in
      worker 0 ();
      List.iter Domain.join helpers;
      harvest slots
    end
  end

module Workers = struct
  (* One long-lived domain per worker index, parked on a condition
     variable between jobs.  This is the steady-state shape of a sharded
     dataplane: spawning is paid once at [create], so a timed drain sees
     only dispatch + execution, never domain start-up. *)

  type state = Idle | Job of (unit -> unit) | Stop

  type cell = {
    m : Mutex.t;
    cv : Condition.t;
    mutable state : state;
    mutable finished : bool;
    mutable failure : (exn * Printexc.raw_backtrace) option;
  }

  type t = {
    cells : cell array;
    doms : unit Domain.t array;
    mutable stopped : bool;
  }

  let rec serve c =
    Mutex.lock c.m;
    while c.state = Idle do
      Condition.wait c.cv c.m
    done;
    match c.state with
    | Idle -> assert false
    | Stop -> Mutex.unlock c.m
    | Job f ->
        c.state <- Idle;
        Mutex.unlock c.m;
        (try f ()
         with e -> c.failure <- Some (e, Printexc.get_raw_backtrace ()));
        Mutex.lock c.m;
        c.finished <- true;
        Condition.broadcast c.cv;
        Mutex.unlock c.m;
        serve c

  let create extra =
    let extra = max 0 extra in
    Obs.Metrics.set_max g_workers (extra + 1);
    let cells =
      Array.init extra (fun _ ->
          {
            m = Mutex.create ();
            cv = Condition.create ();
            state = Idle;
            finished = true;
            failure = None;
          })
    in
    let parent_span = Obs.Span.current () in
    let doms =
      Array.mapi
        (fun i c ->
          Domain.spawn (fun () ->
              Obs.Span.adopt parent_span @@ fun () ->
              Obs.Span.with_ ~cat:"pool" "pool.shard_worker"
                ~args:(fun () -> [ ("worker", string_of_int (i + 1)) ])
              @@ fun () -> serve c))
        cells
    in
    { cells; doms; stopped = false }

  let size t = Array.length t.cells + 1

  let run t f =
    if t.stopped then invalid_arg "Pool.Workers.run: workers stopped";
    Array.iteri
      (fun i c ->
        Mutex.lock c.m;
        c.finished <- false;
        c.failure <- None;
        c.state <- Job (fun () -> f (i + 1));
        Condition.broadcast c.cv;
        Mutex.unlock c.m)
      t.cells;
    (* index 0 runs here, like [run_each] *)
    let own =
      match f 0 with
      | () -> None
      | exception e -> Some (e, Printexc.get_raw_backtrace ())
    in
    Array.iter
      (fun c ->
        Mutex.lock c.m;
        while not c.finished do
          Condition.wait c.cv c.m
        done;
        Mutex.unlock c.m)
      t.cells;
    (* lowest-index failure wins, and the caller is index 0 *)
    (match own with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.iter
      (fun c ->
        match c.failure with
        | Some (e, bt) ->
            c.failure <- None;
            Printexc.raise_with_backtrace e bt
        | None -> ())
      t.cells

  let stop t =
    if not t.stopped then begin
      t.stopped <- true;
      Array.iter
        (fun c ->
          Mutex.lock c.m;
          c.state <- Stop;
          Condition.broadcast c.cv;
          Mutex.unlock c.m)
        t.cells;
      Array.iter Domain.join t.doms
    end
end

let map ?jobs f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  Obs.Metrics.add c_queued n;
  Obs.Metrics.set_max g_jobs jobs;
  let run_item x =
    let v = f x in
    Obs.Metrics.incr c_completed;
    v
  in
  if jobs <= 1 then Array.to_list (Array.map run_item items)
  else begin
    let slots = Array.make n Empty in
    let next = Atomic.make 0 in
    (* Workers adopt the submitting domain's current span, so the spans
       their tasks open nest under the phase that fanned the work out. *)
    let parent_span = Obs.Span.current () in
    let worker ~index () =
      Obs.Span.adopt parent_span @@ fun () ->
      Obs.Span.with_ ~cat:"pool" "pool.worker"
        ~args:(fun () -> [ ("worker", string_of_int index) ])
      @@ fun () ->
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (slots.(i) <-
            (match run_item items.(i) with
            | v -> Value v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let helpers =
      List.init (jobs - 1) (fun i ->
          Domain.spawn (fun () -> worker ~index:(i + 1) ()))
    in
    worker ~index:0 ();
    List.iter Domain.join helpers;
    harvest slots
  end
