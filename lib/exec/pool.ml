(* A small fixed-size domain pool with a deterministic ordered [map].

   Work items are claimed with an atomic counter and results land in a
   slot array indexed by item position, so the output order (and any
   exception raised) is independent of scheduling.  Workers must be
   isolated: [f] may share immutable data freely but must create its own
   mutable state (meters, hardware models, RNGs) per item. *)

let env_jobs () =
  match Sys.getenv_opt "BOLT_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

type 'a slot = Empty | Value of 'a | Error of exn * Printexc.raw_backtrace

let c_queued = Obs.Metrics.counter "pool.tasks_queued"
let c_completed = Obs.Metrics.counter "pool.tasks_completed"
let g_jobs = Obs.Metrics.gauge "pool.max_jobs"

let map ?jobs f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  Obs.Metrics.add c_queued n;
  Obs.Metrics.set_max g_jobs jobs;
  let run_item x =
    let v = f x in
    Obs.Metrics.incr c_completed;
    v
  in
  if jobs <= 1 then Array.to_list (Array.map run_item items)
  else begin
    let slots = Array.make n Empty in
    let next = Atomic.make 0 in
    (* Workers adopt the submitting domain's current span, so the spans
       their tasks open nest under the phase that fanned the work out. *)
    let parent_span = Obs.Span.current () in
    let worker ~index () =
      Obs.Span.adopt parent_span @@ fun () ->
      Obs.Span.with_ ~cat:"pool" "pool.worker"
        ~args:(fun () -> [ ("worker", string_of_int index) ])
      @@ fun () ->
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (slots.(i) <-
            (match run_item items.(i) with
            | v -> Value v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let helpers =
      List.init (jobs - 1) (fun i ->
          Domain.spawn (fun () -> worker ~index:(i + 1) ()))
    in
    worker ~index:0 ();
    List.iter Domain.join helpers;
    (* surface the lowest-indexed failure, as a serial run would *)
    Array.iter
      (function
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt
        | Empty | Value _ -> ())
      slots;
    Array.to_list
      (Array.map (function Value v -> v | Empty | Error _ -> assert false)
         slots)
  end
