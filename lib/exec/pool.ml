(* A small fixed-size domain pool with a deterministic ordered [map].

   Work items are claimed with an atomic counter and results land in a
   slot array indexed by item position, so the output order (and any
   exception raised) is independent of scheduling.  Workers must be
   isolated: [f] may share immutable data freely but must create its own
   mutable state (meters, hardware models, RNGs) per item. *)

let env_jobs () =
  match Sys.getenv_opt "BOLT_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

type 'a slot = Empty | Value of 'a | Error of exn * Printexc.raw_backtrace

let map ?jobs f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  if jobs <= 1 then Array.to_list (Array.map f items)
  else begin
    let slots = Array.make n Empty in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (slots.(i) <-
            (match f items.(i) with
            | v -> Value v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    (* surface the lowest-indexed failure, as a serial run would *)
    Array.iter
      (function
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt
        | Empty | Value _ -> ())
      slots;
    Array.to_list
      (Array.map (function Value v -> v | Empty | Error _ -> assert false)
         slots)
  end
