(** Closure-compiled concrete execution — the per-packet hot path.

    {!compile} translates a validated {!Ir.Program.t} once into a tree
    of OCaml closures: constants folded (values precomputed, charges
    replayed verbatim), variable names resolved to integer slots in a
    flat preallocated frame, packet loads/stores specialized per
    {!Ir.Expr.width}, and every meter charge fused into the closure
    that owes it.  Running a packet then involves zero interpretive
    dispatch — no IR matching, no CPS tuple allocation, no hashtable
    environment.

    Execution is bit-identical to {!Interp.run} / [Concrete]: same IC,
    MA and cycles, same outcomes, PCV observations, branch events and
    {!Interp.Stuck} messages — enforced by the [compiled_interp_agreement]
    differential oracle and golden tests over every registry NF.  The
    Distiller's streaming replay, the experiment scenarios and the
    [bench throughput] benchmark all run on this path.

    The input program must satisfy {!Ir.Program.validate} (as anything
    built by {!Ir.Program.make} does); slot-frame reuse relies on its
    no-read-before-assign guarantee.  Fidelity-checked path replay is
    not supported here — that is {!Replay}'s job, on the interpreter. *)

type t
(** A compiled program: immutable after {!compile}, shareable across
    {!Pool} domains (each run allocates its own frame). *)

val compile : Ir.Program.t -> t
val program : t -> Ir.Program.t

val run :
  t -> meter:Meter.t -> mode:Interp.mode -> ?in_port:int -> ?now:int ->
  Net.Packet.t -> Interp.run
(** Process one packet; exactly {!Interp.run} on the compiled form,
    including the fixed RX/TX framing charges. *)

val runner :
  t -> meter:Meter.t -> mode:Interp.mode ->
  ?in_port:int -> ?now:int -> Net.Packet.t -> Interp.run
(** [runner t ~meter ~mode] is {!run} partially applied the profitable
    way: the frame and per-packet runtime record are allocated once and
    reused for every packet the returned closure processes.  This is
    the steady-state entry point for streaming consumers (the Distiller
    fold, replay scenarios, the throughput benchmark).  Reuse is sound
    because {!Ir.Program.validate} guarantees no slot is read before
    the current packet assigns it.  The closure is single-stream: do
    not share one runner across concurrent domains (compile once and
    call [runner] per domain instead). *)

val run_batch :
  t -> meter:Meter.t -> mode:Interp.mode ->
  (Net.Packet.t * int * int) list -> Interp.run list
(** DPDK-style run-to-completion burst; exactly {!Interp.run_batch} on
    the compiled form (one RX sweep per burst, TX framing per actual
    outcome mix). *)
