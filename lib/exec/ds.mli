(** Concrete stateful data-structure instances.

    The production build of an NF links its stateless code against real
    data structures; this record is the linking interface.  A call charges
    its own costs (instructions, memory accesses at the instance's
    addresses, PCV observations) into the meter it is handed. *)

type sink = {
  s_counts : int array;
      (** Deferred per-kind instruction counters, indexed by
          {!Hw.Cost.kind_index} (length {!Hw.Cost.nkinds}).  A fast path
          bumps these instead of calling [Meter.instr]; the compiled
          runner flushes them into the model at packet exits. *)
  s_mem : addr:int -> write:bool -> dependent:bool -> unit;
      (** Memory-access charge, applied at the access point (addresses
          matter to some models). *)
  s_mem_batched : bool;
      (** When [true], the model prices accesses independently of their
          address and [s_counts] has one extra slot at index
          {!Hw.Cost.nkinds}: fast paths may bump it instead of calling
          [s_mem], and the runner retires the batch at flush. *)
  s_meter : Meter.t;
      (** For PCV observations {e only} — fast paths must not charge
          instructions or memory through it. *)
}
(** The charging surface handed to a specialized fast path: the same
    deferred-charge discipline as {!Compiled}'s fast body, exposed so a
    data structure's inlined method can charge exactly what its generic
    [call] would, without the meter's per-event dispatch. *)

type t = {
  kind : string;  (** must match the program's state declaration *)
  call : Meter.t -> string -> int array -> int;
      (** [call meter meth args] executes the method and returns its
          result.  Raises [Invalid_argument] on unknown methods or
          malformed arguments — those are NF programming errors. *)
  fast_path : sink -> string -> (int array -> int) option;
      (** [fast_path sink meth] is [Some f] when the structure offers a
          specialized implementation of [meth]: [f args] must be
          observationally identical to [call meter meth args] — same
          result, same state mutation, same PCV observations, and the
          same instruction/memory charges (routed through [sink]).
          [None] means the caller must keep the generic dispatch. *)
}

type env = (string * t) list
(** Instance name → implementation, the "link map" for a program. *)

val make :
  ?fast_path:(sink -> string -> (int array -> int) option) ->
  kind:string ->
  (Meter.t -> string -> int array -> int) ->
  t
(** [make ~kind call] builds an instance; [fast_path] defaults to
    offering no specialized methods. *)

val find : env -> string -> t
(** Raises [Invalid_argument] when the instance is not linked. *)
