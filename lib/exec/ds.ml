type sink = {
  s_counts : int array;
  s_mem : addr:int -> write:bool -> dependent:bool -> unit;
  s_mem_batched : bool;
  s_meter : Meter.t;
}

type t = {
  kind : string;
  call : Meter.t -> string -> int array -> int;
  fast_path : sink -> string -> (int array -> int) option;
}

type env = (string * t) list

let no_fast_path _ _ = None
let make ?(fast_path = no_fast_path) ~kind call = { kind; call; fast_path }

let find env instance =
  match List.assoc_opt instance env with
  | Some ds -> ds
  | None -> invalid_arg ("Ds.find: instance not linked: " ^ instance)
