(** Config-specialized, allocation-free compiled execution.

    {!bind} freezes a {!Compiled} program against one stream's concrete
    configuration — meter, mode and linked data-structure instances —
    and recompiles it into closures with the remaining per-packet
    overhead hoisted to bind time: call sites resolve once to each
    structure's {!Ds.fast_path} (no generic dispatch, preallocated
    argv, keys read in place), static instruction charges are packed
    per straight-line segment, and outcomes travel as int codes instead
    of exceptions.  The specialized fast body allocates zero minor
    words per packet in steady state.

    Specialization is charge-{e equivalent}, not charge-{e identical}:
    instruction charges within one straight-line segment land as a
    single batch, so a [Stuck] packet can differ from the interpreter
    by part of its final segment's pack.  Completed packets are exact —
    same outcome, IC, MA, cycles and PCV observations (DESIGN §12).
    Batching is only sound when nothing reads the meter mid-packet, so
    [bind] transparently falls back to {!Compiled.runner} whenever the
    meter traces events, the hardware model couples memory pricing to
    instruction counts, the mode is [Analysis], or any call site lacks
    a fast path. *)

type t
(** A program bound to one stream's frozen configuration. *)

val bind : Compiled.t -> meter:Meter.t -> mode:Interp.mode -> t
(** Specialize [ct] against [meter] and [mode].  Falls back to the
    generic compiled runner (see above) rather than failing — [bind]
    never raises. *)

val specialized : t -> bool
(** [true] when the stream runs the specialized zero-allocation body,
    [false] when it fell back to {!Compiled.runner}. *)

val run : t -> ?in_port:int -> ?now:int -> Net.Packet.t -> Interp.run
(** Full-fidelity single-packet entry point: same result record as
    {!Interp.run}/{!Compiled.run}.  Allocates the [run] record (and, on
    specialized streams, nothing else); use {!exec} for the
    allocation-free hot loop. *)

val exec : t -> in_port:int -> now:int -> Net.Packet.t -> int
(** Allocation-free hot path: processes one packet, returning
    {!code_sent}, {!code_dropped} or {!code_flooded}.  On a
    specialized stream this allocates zero minor words in steady
    state — all labels are required precisely so no [Some] boxing
    happens at call sites.  A [Sent] packet's output port is read with
    {!out_port}.  Raises {!Interp.Stuck} like the interpreter would
    (charges already flushed).  Fallback streams service [exec] through
    the generic runner — correct, but not allocation-free. *)

val out_port : t -> int
(** Output port of the most recent {!exec} that returned
    {!code_sent}. *)

val outcome_of_code : t -> int -> Interp.outcome
(** Decode an {!exec} return code ({!code_sent} reads {!out_port}).
    Raises [Invalid_argument] on anything else. *)

val code_sent : int
val code_dropped : int
val code_flooded : int
