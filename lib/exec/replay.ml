(* Fidelity-checked replay: the concrete Ir.Eval domain driven against
   a symbolic path's assumptions.  Decisions are consumed as the replay
   branches — a mismatch raises at the exact diverging statement — and
   the PCV loops actually entered are reconciled at the end. *)

exception Divergence = Concrete.Divergence

let run ~meter ~stubs ~path_id ~decisions ~loops ?(in_port = 0) ?(now = 0)
    program packet =
  let f =
    {
      Concrete.path_id;
      expected = decisions;
      consumed = 0;
      entered = [];
    }
  in
  let result =
    Concrete.run_once ~fidelity:f ~meter ~mode:(Concrete.Analysis stubs)
      ~in_port ~now program packet
  in
  if f.Concrete.expected <> [] then
    Concrete.diverged
      "replay diverged from path %d: only %d of %d assumed decisions were \
       made"
      path_id f.Concrete.consumed
      (f.Concrete.consumed + List.length f.Concrete.expected);
  let entered = List.sort_uniq String.compare f.Concrete.entered in
  let assumed = List.sort_uniq String.compare loops in
  if entered <> assumed then
    Concrete.diverged
      "replay diverged from path %d: PCV loops entered [%s], path assumes \
       [%s]"
      path_id
      (String.concat ";" entered)
      (String.concat ";" assumed);
  result
