(** Concrete interpreter for NF programs.

    Two modes:

    - {b Production} — stateful calls dispatch to real data structures
      ({!Ds.t}); this is the "measured" run, the analogue of the paper's
      instrumented testbed executions.
    - {b Analysis} — stateful calls return pre-solved stub values (from the
      solver's model of a symbolic path) and emit [E_call] trace events;
      this is the replay step of paper Alg. 2, line 7.  An extra
      call-overhead charge stands in for the disabled link-time
      optimisations of the analysis build (paper §3.5).

    Both modes charge the stateless code through the exact same cost
    recipe, including the fixed driver/DPDK RX and TX framing segments. *)

type mode = Concrete.mode =
  | Production of Ds.env
  | Analysis of int list
      (** Return values for the stateful calls, in call order. *)

type outcome = Concrete.outcome =
  | Sent of int  (** forwarded out of the given port *)
  | Dropped
  | Flooded

type run = Concrete.run = {
  outcome : outcome;
  ic : int;  (** instructions charged during this packet *)
  ma : int;
  cycles : int;
}

exception Stuck of string
(** Raised when the program violates the IR's runtime contract: an
    [Unroll] loop exceeding its bound, a negative packet offset, an
    analysis stub list running dry. *)

val packet_base : int
(** Byte address the packet buffer is modelled at. *)

val rx_ring_base : int
(** Byte address of the RX/TX descriptor rings. *)

val charge_rx : Meter.t -> unit
(** The fixed driver RX framing segment (descriptor read + prefetch),
    charged once per packet ({!run}) or once per burst ({!run_batch}). *)

val charge_tx : Meter.t -> outcome -> unit
(** The fixed TX framing segment for one outcome: buffer recycle for
    [Dropped], descriptor write-back + doorbell for [Sent]/[Flooded]. *)

val run :
  meter:Meter.t -> mode:mode -> ?in_port:int -> ?now:int ->
  Ir.Program.t -> Net.Packet.t -> run
(** Process one packet.  Costs accumulate into [meter] (whose hardware
    model may be warm from previous packets); the [run] reports the deltas
    for this packet. *)

val run_batch :
  meter:Meter.t -> mode:mode ->
  Ir.Program.t -> (Net.Packet.t * int * int) list -> run list
(** DPDK-style run-to-completion batch: the RX descriptor sweep is
    charged once for the whole [(packet, in_port, now)] batch instead of
    per packet — the amortisation [Bolt.Throughput.of_class ~batch]
    models.  TX framing follows the burst's actual outcome mix: one
    buffer-recycle charge per dropped packet, plus a single send
    doorbell if anything was forwarded or flooded.  Per-packet header
    work is unchanged. *)
