(* A thin facade over the concrete Ir.Eval domain (see Concrete): the
   historical entry point for plain production/analysis runs.  The
   traversal itself lives in Ir.Eval; the costs, modes and outcomes in
   Concrete; fidelity-checked replay in Replay. *)

type mode = Concrete.mode = Production of Ds.env | Analysis of int list
type outcome = Concrete.outcome = Sent of int | Dropped | Flooded

type run = Concrete.run = {
  outcome : outcome;
  ic : int;
  ma : int;
  cycles : int;
}

exception Stuck = Concrete.Stuck

let packet_base = Concrete.packet_base
let rx_ring_base = Concrete.rx_ring_base
let charge_rx = Concrete.charge_rx
let charge_tx = Concrete.charge_tx

let run ~meter ~mode ?(in_port = 0) ?(now = 0) program packet =
  Concrete.run_once ~meter ~mode ~in_port ~now program packet

let run_batch ~meter ~mode (program : Ir.Program.t) batch =
  (match mode with
  | Analysis _ ->
      invalid_arg "Interp.run_batch: analysis replay is per-path, not batched"
  | Production _ -> ());
  (* one descriptor-ring sweep for the whole burst *)
  charge_rx meter;
  let runs =
    List.map
      (fun (packet, in_port, now) ->
        let ic0 = Meter.ic meter and ma0 = Meter.ma meter in
        let cy0 = Meter.cycles meter in
        let outcome =
          Concrete.process ~meter ~mode ~in_port ~now program packet
        in
        Concrete.record
          {
            outcome;
            ic = Meter.ic meter - ic0;
            ma = Meter.ma meter - ma0;
            cycles = Meter.cycles meter - cy0;
          })
      batch
  in
  (* TX framing per actual outcome mix: every dropped packet's buffer
     is recycled individually, and the send doorbell rings once if the
     burst forwarded or flooded anything — an all-Flooded burst is not
     priced as if nothing happened beyond a lone send. *)
  List.iter (fun r -> if r.outcome = Dropped then charge_tx meter Dropped) runs;
  if List.exists (fun r -> r.outcome <> Dropped) runs then
    charge_tx meter (Sent 0);
  runs
