open Ir

type mode = Production of Ds.env | Analysis of int list
type outcome = Sent of int | Dropped | Flooded
type run = { outcome : outcome; ic : int; ma : int; cycles : int }

exception Stuck of string

let c_runs = Obs.Metrics.counter "interp.runs"
let c_instrs = Obs.Metrics.counter "interp.instructions"
let c_mems = Obs.Metrics.counter "interp.mem_accesses"
let c_calls = Obs.Metrics.counter "interp.stateful_calls"

let stuck fmt = Format.kasprintf (fun s -> raise (Stuck s)) fmt
let packet_base = 0x1000_0000
let rx_ring_base = 0x0800_0000

exception Returned of outcome

type state = {
  meter : Meter.t;
  packet : Net.Packet.t;
  env : (string, int) Hashtbl.t;
  mutable stubs : int list;  (** Analysis mode only *)
  mode : mode;
  mutable pcv_depth : int;
      (** > 0 while inside a PCV loop — branch events are suppressed
          there, mirroring the symbolic engine's single-iteration
          over-approximation of PCV bodies *)
}

let kind_of_binop op =
  if Expr.is_binop_div op then Hw.Cost.Div
  else if Expr.is_binop_mul op then Hw.Cost.Mul
  else Hw.Cost.Alu

let apply_unop op v = Semantics.apply_unop op v

let apply_binop op a b =
  try Semantics.apply_binop op a b
  with Semantics.Undefined msg -> stuck "%s" msg

let pkt_get packet width off =
  match width with
  | Expr.W8 -> Net.Packet.get_u8 packet off
  | Expr.W16 -> Net.Packet.get_u16 packet off
  | Expr.W32 -> Net.Packet.get_u32 packet off
  | Expr.W48 -> Net.Packet.get_u48 packet off

let pkt_set packet width off v =
  match width with
  | Expr.W8 -> Net.Packet.set_u8 packet off v
  | Expr.W16 -> Net.Packet.set_u16 packet off v
  | Expr.W32 -> Net.Packet.set_u32 packet off v
  | Expr.W48 -> Net.Packet.set_u48 packet off v

let rec eval st (e : Expr.t) : int =
  match e with
  | Expr.Const n -> n
  | Expr.Var v -> (
      match Hashtbl.find_opt st.env v with
      | Some n -> n
      | None -> stuck "unbound variable %s" v)
  | Expr.Pkt_len ->
      Meter.instr st.meter Hw.Cost.Move 1;
      Net.Packet.length st.packet
  | Expr.Pkt_load (width, off_expr) ->
      let off = eval st off_expr in
      if off < 0 then stuck "negative packet offset";
      Meter.instr st.meter Hw.Cost.Load 1;
      Meter.mem st.meter (packet_base + off);
      (try pkt_get st.packet width off
       with Invalid_argument msg -> stuck "%s" msg)
  | Expr.Unop (op, e) ->
      let v = eval st e in
      Meter.instr st.meter Hw.Cost.Alu 1;
      apply_unop op v
  | Expr.Binop (op, a, b) ->
      let va = eval st a in
      let vb = eval st b in
      Meter.instr st.meter (kind_of_binop op) 1;
      apply_binop op va vb

let do_call st { Stmt.ret; instance; meth; args } =
  let argv = Array.of_list (List.map (eval st) args) in
  Obs.Metrics.incr c_calls;
  Meter.instr st.meter Hw.Cost.Call 1;
  let result =
    match st.mode with
    | Production dss -> (Ds.find dss instance).Ds.call st.meter meth argv
    | Analysis _ -> (
        (* The analysis build links against symbolic-model stubs; the
           concrete replay feeds them the solver's values.  The extra
           overhead is the no-LTO conservative margin. *)
        Meter.instr st.meter Hw.Cost.Move Hw.Cost.cost_call_overhead;
        match st.stubs with
        | v :: rest ->
            st.stubs <- rest;
            v
        | [] -> stuck "analysis replay ran out of stub values")
  in
  Meter.instr st.meter Hw.Cost.Ret 1;
  (match st.mode with
  | Analysis _ ->
      Meter.call_event st.meter ~instance ~meth ~args:argv ~ret:result
  | Production _ -> ());
  match ret with
  | None -> ()
  | Some v ->
      Meter.instr st.meter Hw.Cost.Move 1;
      Hashtbl.replace st.env v result

let rec exec_block st block = List.iter (exec_stmt st) block

and exec_stmt st (stmt : Stmt.t) =
  match stmt with
  | Stmt.Comment _ -> ()
  | Stmt.Assign (v, e) ->
      let value = eval st e in
      Meter.instr st.meter Hw.Cost.Move 1;
      Hashtbl.replace st.env v value
  | Stmt.Pkt_store (width, off_expr, val_expr) ->
      let off = eval st off_expr in
      let value = eval st val_expr in
      if off < 0 then stuck "negative packet offset";
      Meter.instr st.meter Hw.Cost.Store 1;
      Meter.mem st.meter ~write:true (packet_base + off);
      (try pkt_set st.packet width off value
       with Invalid_argument msg -> stuck "%s" msg)
  | Stmt.If (cond, then_, else_) ->
      let c = eval st cond in
      Meter.instr st.meter Hw.Cost.Branch 1;
      if st.pcv_depth = 0 then Meter.branch st.meter (c <> 0);
      if c <> 0 then exec_block st then_ else exec_block st else_
  | Stmt.While (kind, cond, body) ->
      let bound, pcv =
        match kind with
        | Stmt.Unroll bound -> (bound, None)
        | Stmt.Pcv_loop (name, bound) -> (bound, Some name)
      in
      Option.iter (Meter.loop_head st.meter) pcv;
      if pcv <> None then st.pcv_depth <- st.pcv_depth + 1;
      let iterations = ref 0 in
      let continue = ref true in
      while !continue do
        let c = eval st cond in
        Meter.instr st.meter Hw.Cost.Branch 1;
        if pcv = None && st.pcv_depth = 0 then Meter.branch st.meter (c <> 0);
        if c = 0 then continue := false
        else begin
          incr iterations;
          if !iterations > bound then
            stuck "loop exceeded its static bound %d" bound;
          Option.iter (Meter.loop_iter st.meter) pcv;
          exec_block st body
        end
      done;
      if pcv <> None then st.pcv_depth <- st.pcv_depth - 1;
      Option.iter
        (fun name ->
          Meter.loop_exit st.meter name;
          Meter.observe st.meter (Perf.Pcv.v name) !iterations)
        pcv
  | Stmt.Call call -> do_call st call
  | Stmt.Return action ->
      Meter.instr st.meter Hw.Cost.Ret 1;
      let outcome =
        match action with
        | Stmt.Forward port -> Sent (eval st port)
        | Stmt.Drop -> Dropped
        | Stmt.Flood -> Flooded
      in
      raise (Returned outcome)

(* Fixed-cost RX framing: the driver reads the descriptor and prefetches
   the packet — simple control flow, constant cost (paper §3.5). *)
let charge_rx meter =
  Meter.instr meter Hw.Cost.Alu 22;
  Meter.instr meter Hw.Cost.Move 8;
  for i = 0 to 3 do
    Meter.instr meter Hw.Cost.Load 1;
    Meter.mem meter (rx_ring_base + (i * 8))
  done;
  Meter.instr meter Hw.Cost.Branch 2

let charge_tx meter outcome =
  match outcome with
  | Dropped ->
      Meter.instr meter Hw.Cost.Alu 4;
      Meter.instr meter Hw.Cost.Store 1;
      Meter.mem meter ~write:true rx_ring_base
  | Sent _ | Flooded ->
      Meter.instr meter Hw.Cost.Alu 14;
      Meter.instr meter Hw.Cost.Move 4;
      for i = 0 to 2 do
        Meter.instr meter Hw.Cost.Store 1;
        Meter.mem meter ~write:true (rx_ring_base + 64 + (i * 8))
      done;
      Meter.instr meter Hw.Cost.Branch 1

let process ~meter ~mode ~in_port ~now (program : Program.t) packet =
  let st =
    {
      meter;
      packet;
      env = Hashtbl.create 16;
      stubs = (match mode with Analysis stubs -> stubs | _ -> []);
      mode;
      pcv_depth = 0;
    }
  in
  Hashtbl.replace st.env "in_port" in_port;
  Hashtbl.replace st.env "now" now;
  match exec_block st program.Program.body with
  | () -> stuck "program fell through without returning"
  | exception Returned outcome -> outcome

let record (r : run) =
  Obs.Metrics.incr c_runs;
  Obs.Metrics.add c_instrs r.ic;
  Obs.Metrics.add c_mems r.ma;
  r

let run ~meter ~mode ?(in_port = 0) ?(now = 0) (program : Program.t) packet =
  let ic0 = Meter.ic meter and ma0 = Meter.ma meter in
  let cy0 = Meter.cycles meter in
  charge_rx meter;
  let outcome = process ~meter ~mode ~in_port ~now program packet in
  charge_tx meter outcome;
  record
    {
      outcome;
      ic = Meter.ic meter - ic0;
      ma = Meter.ma meter - ma0;
      cycles = Meter.cycles meter - cy0;
    }

let run_batch ~meter ~mode (program : Program.t) batch =
  (match mode with
  | Analysis _ ->
      invalid_arg "Interp.run_batch: analysis replay is per-path, not batched"
  | Production _ -> ());
  (* one descriptor-ring sweep for the whole burst *)
  charge_rx meter;
  let runs =
    List.map
      (fun (packet, in_port, now) ->
        let ic0 = Meter.ic meter and ma0 = Meter.ma meter in
        let cy0 = Meter.cycles meter in
        let outcome = process ~meter ~mode ~in_port ~now program packet in
        record
          {
            outcome;
            ic = Meter.ic meter - ic0;
            ma = Meter.ma meter - ma0;
            cycles = Meter.cycles meter - cy0;
          })
      batch
  in
  (* one TX doorbell for everything the burst forwarded *)
  if List.exists (fun r -> r.outcome <> Dropped) runs then
    charge_tx meter (Sent 0);
  runs
