(* A memoizing front-end to {!Solve}.

   The key is a fingerprint of the *normalized* constraint set — trivial
   [True] conjuncts dropped, the rest sorted and deduplicated — plus the
   solver budgets, and the cached verdict is obtained by solving that
   normalized set.  A conjunction is insensitive to ordering and
   multiplicity, so the verdict is a pure function of the key; that is
   what makes the cache safe to share between pool workers: whichever
   domain populates an entry, every reader sees the same answer, and
   parallel runs stay bit-identical to serial ones.

   All table accesses are mutex-protected; the solve itself runs outside
   the lock, so concurrent misses on distinct keys proceed in parallel
   (two simultaneous misses on the *same* key both solve and agree). *)

type stats = { hits : int; misses : int }

let hit_rate { hits; misses } =
  let total = hits + misses in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

(* Stdlib structural compare is a total order on [Constr.t]: pure
   variants over ints, strings and lists. *)
let normalize constraints =
  constraints
  |> List.filter (fun c -> not (Constr.is_true c))
  |> List.sort_uniq Stdlib.compare

type key = { max_conjuncts : int; max_nodes : int; atoms : Constr.t list }

module H = Hashtbl.Make (struct
  type t = key

  let equal = ( = )

  (* The default [Hashtbl.hash] only samples 10 meaningful nodes — far
     too few to discriminate constraint sets that share a long common
     prefix.  Sample deeply instead; equality still arbitrates. *)
  let hash k = Hashtbl.hash_param 256 512 k
end)

let lock = Mutex.create ()
let table : Solve.result H.t = H.create 1024
let hits = ref 0
let misses = ref 0

(* Defaults mirror {!Solve.check}. *)
let check ?(max_conjuncts = 4096) ?(max_nodes = 20_000) constraints =
  let key = { max_conjuncts; max_nodes; atoms = normalize constraints } in
  let cached =
    Mutex.protect lock (fun () ->
        match H.find_opt table key with
        | Some r ->
            incr hits;
            Some r
        | None ->
            incr misses;
            None)
  in
  match cached with
  | Some r -> r
  | None ->
      let r = Solve.check ~max_conjuncts ~max_nodes key.atoms in
      Mutex.protect lock (fun () -> H.replace table key r);
      r

let is_sat ?max_conjuncts ?max_nodes constraints =
  match check ?max_conjuncts ?max_nodes constraints with
  | Solve.Sat _ | Solve.Unknown -> true
  | Solve.Unsat -> false

let stats () =
  Mutex.protect lock (fun () -> { hits = !hits; misses = !misses })

let reset () =
  Mutex.protect lock (fun () ->
      H.reset table;
      hits := 0;
      misses := 0)
