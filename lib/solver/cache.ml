(* A memoizing front-end to {!Solve}.

   The key is a fingerprint of the *normalized* constraint set — trivial
   [True] conjuncts dropped, the rest sorted and deduplicated — plus the
   solver budgets, and the cached verdict is obtained by solving that
   normalized set.  A conjunction is insensitive to ordering and
   multiplicity, so the verdict is a pure function of the key; that is
   what makes the cache safe to share between pool workers: whichever
   domain populates an entry, every reader sees the same answer, and
   parallel runs stay bit-identical to serial ones.

   The table is bounded: at [capacity] entries, inserts evict via the
   second-chance (clock) policy — keys cycle through a FIFO, a hit marks
   an entry referenced, and the evictor skips referenced entries once
   before removing them — an O(1)-amortized approximation of LRU.
   Eviction only ever forgets a verdict, never changes one, so
   determinism across [--jobs] levels is unaffected.

   All table accesses are mutex-protected; the solve itself runs outside
   the lock, so concurrent misses on distinct keys proceed in parallel
   (two simultaneous misses on the *same* key both solve and agree). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  fingerprints : int;
}

let hit_rate { hits; misses; _ } =
  let total = hits + misses in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

let mean_probe_cost { hits; misses; fingerprints; _ } =
  let total = hits + misses in
  if total = 0 then 0. else float_of_int fingerprints /. float_of_int total

(* Stdlib structural compare is a total order on [Constr.t]: pure
   variants over ints, strings and lists. *)
let normalize constraints =
  constraints
  |> List.filter (fun c -> not (Constr.is_true c))
  |> List.sort_uniq Stdlib.compare

type key = {
  fp : int;  (** structural fingerprint, computed once at normalization *)
  max_conjuncts : int;
  max_nodes : int;
  atoms : Constr.t list;
}

(* The full structural hash, walking every node exactly once.  Stored in
   the key so table probes compare the precomputed word verbatim instead
   of re-sampling the constraint tree per probe (the previous scheme,
   [Hashtbl.hash_param 256 512], re-walked up to 512 nodes on every
   lookup).  Symbol names are skipped: ids arbitrate, and a collision
   only costs the structural-equality fallback. *)
let mix h x = ((h lsl 5) + h) lxor x

let rec fp_constr h (c : Constr.t) =
  match c with
  | Constr.True -> mix h 1
  | Constr.False -> mix h 2
  | Constr.Atom (Constr.Le l) -> fp_lin (mix h 3) l
  | Constr.Atom (Constr.Eqz l) -> fp_lin (mix h 4) l
  | Constr.And l -> mix (List.fold_left fp_constr (mix h 5) l) 7
  | Constr.Or l -> mix (List.fold_left fp_constr (mix h 6) l) 8

and fp_lin h l =
  let h = mix h (Linexpr.const_part l) in
  List.fold_left
    (fun h (s, c) ->
      let lo, hi = Sym.bounds s in
      mix (mix (mix (mix h (Sym.id s)) lo) hi) c)
    h (Linexpr.terms l)

let fingerprint ~max_conjuncts ~max_nodes atoms =
  List.fold_left fp_constr (mix (mix 0 max_conjuncts) max_nodes) atoms

module H = Hashtbl.Make (struct
  type t = key

  (* the fingerprint covers the whole structure, so almost every
     non-equal probe is rejected on the first word *)
  let equal a b =
    a.fp = b.fp
    && a.max_conjuncts = b.max_conjuncts
    && a.max_nodes = b.max_nodes
    && a.atoms = b.atoms

  let hash k = k.fp
end)

type entry = { verdict : Solve.result; mutable referenced : bool }

let default_capacity = 32_768
let bypass = Atomic.make false
let set_enabled on = Atomic.set bypass (not on)
let enabled () = not (Atomic.get bypass)
let lock = Mutex.create ()
let table : entry H.t = H.create 1024
let clock : key Queue.t = Queue.create ()
let capacity = ref default_capacity
let hits = ref 0
let misses = ref 0
let evictions = ref 0
let fingerprints = ref 0
let c_hits = Obs.Metrics.counter "solver.cache.hits"
let c_misses = Obs.Metrics.counter "solver.cache.misses"
let c_evictions = Obs.Metrics.counter "solver.cache.evictions"

(* Call with [lock] held.  Every key in [table] is in [clock] exactly
   once, so the loop terminates: a full revolution clears every
   referenced bit and the next candidate is evictable. *)
let rec evict_one () =
  match Queue.take_opt clock with
  | None -> ()
  | Some k -> (
      match H.find_opt table k with
      | None -> evict_one ()
      | Some e when e.referenced ->
          e.referenced <- false;
          Queue.add k clock;
          evict_one ()
      | Some _ ->
          H.remove table k;
          incr evictions;
          Obs.Metrics.incr c_evictions)

let insert key verdict =
  Mutex.protect lock (fun () ->
      if not (H.mem table key) then begin
        while H.length table >= !capacity do
          evict_one ()
        done;
        H.replace table key { verdict; referenced = false };
        Queue.add key clock
      end)

(* Defaults mirror {!Solve.check}. *)
let check ?(max_conjuncts = 4096) ?(max_nodes = 20_000) constraints =
  if Atomic.get bypass then
    Solve.check ~max_conjuncts ~max_nodes constraints
  else
  let atoms = normalize constraints in
  let fp = fingerprint ~max_conjuncts ~max_nodes atoms in
  let key = { fp; max_conjuncts; max_nodes; atoms } in
  let cached =
    Mutex.protect lock (fun () ->
        incr fingerprints;
        match H.find_opt table key with
        | Some e ->
            e.referenced <- true;
            incr hits;
            Obs.Metrics.incr c_hits;
            Some e.verdict
        | None ->
            incr misses;
            Obs.Metrics.incr c_misses;
            None)
  in
  match cached with
  | Some r -> r
  | None ->
      let r = Solve.check ~max_conjuncts ~max_nodes key.atoms in
      insert key r;
      r

let is_sat ?max_conjuncts ?max_nodes constraints =
  match check ?max_conjuncts ?max_nodes constraints with
  | Solve.Sat _ | Solve.Unknown -> true
  | Solve.Unsat -> false

let stats () =
  Mutex.protect lock (fun () ->
      {
        hits = !hits;
        misses = !misses;
        evictions = !evictions;
        fingerprints = !fingerprints;
      })

let size () = Mutex.protect lock (fun () -> H.length table)

let set_capacity n =
  if n < 1 then invalid_arg "Solver.Cache.set_capacity: capacity must be >= 1";
  Mutex.protect lock (fun () ->
      capacity := n;
      while H.length table > !capacity do
        evict_one ()
      done)

let reset () =
  Mutex.protect lock (fun () ->
      H.reset table;
      Queue.clear clock;
      hits := 0;
      misses := 0;
      evictions := 0;
      fingerprints := 0)
