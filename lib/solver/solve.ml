type result = Sat of Model.t | Unsat | Unknown

let c_solves = Obs.Metrics.counter "solver.solves"
let c_conjuncts = Obs.Metrics.counter "solver.conjuncts"
let c_nodes = Obs.Metrics.counter "solver.nodes"
let c_unknowns = Obs.Metrics.counter "solver.unknowns"

(* Floor and ceiling division, correct for negative numerators. *)
let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r lxor b < 0 then q - 1 else q

let cdiv a b = -fdiv (-a) b

module IM = Map.Make (Int)

(* Interval store: symbol id -> (symbol, lo, hi). *)
type store = (Sym.t * int * int) IM.t

let store_of_syms syms : store =
  List.fold_left
    (fun acc s ->
      let lo, hi = Sym.bounds s in
      IM.add (Sym.id s) (s, lo, hi) acc)
    IM.empty syms

let store_bounds store s =
  match IM.find_opt (Sym.id s) store with
  | Some (_, lo, hi) -> (lo, hi)
  | None -> Sym.bounds s

exception Empty

(* Tighten symbol [s] to [lo, hi] intersected with its current interval. *)
let tighten store s lo hi =
  let clo, chi = store_bounds store s in
  let nlo = max lo clo and nhi = min hi chi in
  if nlo > nhi then raise Empty;
  if nlo = clo && nhi = chi then (store, false)
  else (IM.add (Sym.id s) (s, nlo, nhi) store, true)

(* Propagate [lin <= 0] through the store once. *)
let propagate_le store lin =
  let range = Linexpr.range (store_bounds store) lin in
  if fst range > 0 then raise Empty;
  List.fold_left
    (fun (store, changed) (s, c) ->
      (* c*s <= -(min of the rest)  where rest = lin - c*s *)
      let rest = Linexpr.sub lin (Linexpr.scale c (Linexpr.sym s)) in
      let rest_min, _ = Linexpr.range (store_bounds store) rest in
      let store, ch =
        if c > 0 then
          let bound = fdiv (-rest_min) c in
          tighten store s min_int bound
        else
          let bound = cdiv (-rest_min) c in
          tighten store s bound max_int
      in
      (store, changed || ch))
    (store, false) (Linexpr.terms lin)

let propagate_atom store = function
  | Constr.Le lin -> propagate_le store lin
  | Constr.Eqz lin ->
      let store, c1 = propagate_le store lin in
      let store, c2 = propagate_le store (Linexpr.neg lin) in
      (store, c1 || c2)

let propagate_fixpoint atoms store =
  let rec loop store rounds =
    if rounds = 0 then store
    else
      let store, changed =
        List.fold_left
          (fun (store, changed) atom ->
            let store, ch = propagate_atom store atom in
            (store, changed || ch))
          (store, false) atoms
      in
      if changed then loop store (rounds - 1) else store
  in
  loop store 200

let atom_sat assign = function
  | Constr.Le lin -> Linexpr.eval assign lin <= 0
  | Constr.Eqz lin -> Linexpr.eval assign lin = 0

let model_of_store store =
  IM.fold (fun _ (s, lo, _) m -> Model.add s lo m) store Model.empty

(* Branch-and-prune over a single conjunct of atoms. *)
let solve_conjunct ~max_nodes atoms =
  let syms =
    List.concat_map
      (function Constr.Le l | Constr.Eqz l -> Linexpr.syms l)
      atoms
    |> List.sort_uniq Sym.compare
  in
  let nodes = ref 0 in
  let rec search store =
    incr nodes;
    if !nodes > max_nodes then None
    else
      match propagate_fixpoint atoms store with
      | exception Empty -> Some None (* proven empty: prune *)
      | store -> (
          let model = model_of_store store in
          let assign s = Model.value model s in
          if List.for_all (atom_sat assign) atoms then Some (Some model)
          else
            (* pick the widest unfixed symbol and split its interval *)
            let pick =
              IM.fold
                (fun _ (s, lo, hi) best ->
                  if lo = hi then best
                  else
                    match best with
                    | Some (_, blo, bhi) when bhi - blo >= hi - lo -> best
                    | _ -> Some (s, lo, hi))
                store None
            in
            match pick with
            | None -> Some None (* all fixed yet unsatisfied: dead *)
            | Some (s, lo, hi) ->
                let mid = lo + ((hi - lo) / 2) in
                let try_range nlo nhi =
                  match tighten store s nlo nhi with
                  | exception Empty -> Some None
                  | store, _ -> search store
                in
                let left = try_range lo mid in
                (match left with
                | Some (Some m) -> Some (Some m)
                | Some None -> try_range (mid + 1) hi
                | None -> None))
  in
  let verdict =
    match search (store_of_syms syms) with
    | Some (Some m) -> Sat m
    | Some None -> Unsat
    | None -> Unknown
  in
  Obs.Metrics.incr c_conjuncts;
  Obs.Metrics.add c_nodes !nodes;
  verdict

(* Enumerate the DNF of a formula as a sequence of atom lists. *)
let rec dnf (f : Constr.t) : Constr.atom list Seq.t =
  match f with
  | Constr.True -> Seq.return []
  | Constr.False -> Seq.empty
  | Constr.Atom a -> Seq.return [ a ]
  | Constr.Or parts -> Seq.concat_map dnf (List.to_seq parts)
  | Constr.And parts ->
      List.fold_left
        (fun acc part ->
          Seq.concat_map
            (fun conj -> Seq.map (fun atoms -> conj @ atoms) (dnf part))
            acc)
        (Seq.return []) parts

let check ?(max_conjuncts = 4096) ?(max_nodes = 20_000) constraints =
  Obs.Metrics.incr c_solves;
  let formula = Constr.conj constraints in
  let verdict =
    match formula with
    | Constr.True -> Sat Model.empty
    | Constr.False -> Unsat
    | _ ->
        let rec scan seq budget any_unknown =
          if budget = 0 then Unknown
          else
            match Seq.uncons seq with
            | None -> if any_unknown then Unknown else Unsat
            | Some (atoms, rest) -> (
                match solve_conjunct ~max_nodes atoms with
                | Sat m -> Sat m
                | Unsat -> scan rest (budget - 1) any_unknown
                | Unknown -> scan rest (budget - 1) true)
        in
        scan (dnf formula) max_conjuncts false
  in
  (match verdict with Unknown -> Obs.Metrics.incr c_unknowns | _ -> ());
  verdict

let is_sat ?max_conjuncts ?max_nodes constraints =
  match check ?max_conjuncts ?max_nodes constraints with
  | Sat _ | Unknown -> true
  | Unsat -> false

let model_exn constraints =
  match check constraints with
  | Sat m -> m
  | Unsat -> failwith "Solve.model_exn: unsatisfiable"
  | Unknown -> failwith "Solve.model_exn: solver gave up"

let pp_result ppf = function
  | Sat m -> Fmt.pf ppf "sat (%a)" Model.pp m
  | Unsat -> Fmt.string ppf "unsat"
  | Unknown -> Fmt.string ppf "unknown"
