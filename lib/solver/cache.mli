(** A memoizing, domain-safe front-end to {!Solve}.

    Verdicts are keyed on a normalized (sorted, deduplicated, [True]-
    free) fingerprint of the constraint set together with the solver
    budgets, and computed by solving that normalized set — so a cached
    answer is a pure function of its key, and parallel pipeline runs
    return exactly what a serial run would.  The symbolic engine's
    per-fork feasibility checks and packet-class matching re-solve many
    identical sets; this cache collapses them to one solve each.

    The table is global to the process, protected by a mutex, and
    bounded: past {!set_capacity} entries (default 32768), inserts evict
    with a second-chance (clock) policy that approximates LRU in O(1)
    amortized time.  Evicting forgets a verdict but never changes one —
    re-querying an evicted key re-solves to the identical answer — so
    [--jobs] determinism is preserved at any capacity. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  fingerprints : int;
      (** structural hashes computed — exactly one per lookup.  Keys
          store their fingerprint, so table probes compare the
          precomputed word verbatim instead of re-walking the
          constraint tree per probe. *)
}

val check :
  ?max_conjuncts:int -> ?max_nodes:int -> Constr.t list -> Solve.result
(** Memoized {!Solve.check} (same budget defaults).  The verdict — and
    for [Sat] the model — is that of the normalized constraint set,
    which is equisatisfiable with the input. *)

val is_sat : ?max_conjuncts:int -> ?max_nodes:int -> Constr.t list -> bool
(** Memoized {!Solve.is_sat}; shares {!check}'s table, so a [check]
    followed by [is_sat] on the same set costs one solve. *)

val stats : unit -> stats
(** Cumulative hit/miss/eviction counters since start or the last
    {!reset}. *)

val hit_rate : stats -> float
(** Hits over total lookups, in [0, 1]; [0.] when no lookups. *)

val mean_probe_cost : stats -> float
(** Fingerprint computations per lookup; [1.0] exactly when every
    lookup hashed its constraint set once (the invariant the
    fingerprinted-key scheme guarantees — regression-tested). *)

val size : unit -> int
(** Entries currently held; always [<= capacity]. *)

val set_capacity : int -> unit
(** Change the bound (>= 1), evicting immediately if the table already
    exceeds it.  The default is 32768 entries. *)

val reset : unit -> unit
(** Clear the table and zero the counters (capacity is kept). *)

val set_enabled : bool -> unit
(** [set_enabled false] bypasses the table entirely: every [check] and
    [is_sat] goes straight to {!Solve}, touching neither the table nor
    the counters.  Because verdicts are a pure function of the
    constraint set, output with the cache off is identical to output
    with it on — the differential oracle in [Proptest.Oracle] checks
    exactly that.  Default: enabled. *)

val enabled : unit -> bool
