(* Production-shaped soak workloads (the long-running counterpart of
   {!Adversarial}'s surgical state synthesis): Zipf-popular flows,
   heavy-tailed flow sizes, churn over millions of distinct flows, and
   packet-realizable collision floods.  [bench soak] replays these
   through the specialized NAT/router paths and records throughput and
   contract soundness per attack class. *)

(* ---- Zipf flow popularity --------------------------------------------- *)

(* Precomputed CDF over ranks 0..n-1 with P(rank) ∝ 1/(rank+1)^theta;
   drawing is a binary search, so million-packet streams stay cheap. *)
type zipf = { cdf : float array }

let zipf ~n ~theta =
  if n < 1 then invalid_arg "Soak.zipf";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (r + 1) ** theta));
    cdf.(r) <- !total
  done;
  let total = !total in
  Array.iteri (fun i v -> cdf.(i) <- v /. total) cdf;
  { cdf }

(* [Prng] yields integers; scale a 30-bit draw into [0, 1). *)
let uniform rng = float_of_int (Prng.below rng (1 lsl 30)) /. float_of_int (1 lsl 30)

let zipf_draw z rng =
  let u = uniform rng in
  let n = Array.length z.cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(* ---- Heavy-tailed flow sizes ------------------------------------------ *)

(* Bounded Pareto: P(X > x) ∝ x^-alpha on [lo, hi] — elephant flows are
   rare but carry most of the packets. *)
let pareto_size rng ~alpha ~lo ~hi =
  if lo < 1 || hi < lo then invalid_arg "Soak.pareto_size";
  let l = float_of_int lo and h = float_of_int hi in
  let u = uniform rng in
  (* inverse CDF: x = L · (1 − U·(1 − (L/H)^α))^(−1/α), spanning [L, H] *)
  let x = l *. ((1.0 -. (u *. (1.0 -. ((l /. h) ** alpha)))) ** (-1.0 /. alpha)) in
  max lo (min hi (int_of_float x))

(* ---- Deterministic flow universe -------------------------------------- *)

(* Flow [i] of a universe that is distinct for i < 2^24 without any
   dedup table — the only way to reach millions of flows cheaply.
   Sources sit in 10.0.0.0/8 (the NAT's internal side). *)
let flow_of_index i =
  Net.Flow.make
    ~src_ip:
      (Net.Ipv4.addr_of_parts 10
         ((i lsr 16) land 0xff)
         ((i lsr 8) land 0xff)
         (i land 0xff))
    ~dst_ip:(Net.Ipv4.addr_of_parts 93 0 0 1)
    ~src_port:(1024 + ((i lsr 24) land 0x3fff))
    ~dst_port:80 ~proto:Net.Ipv4.proto_udp

let packet_of_index i = Net.Build.udp_of_flow (flow_of_index i)

(* ---- Packet streams --------------------------------------------------- *)

let zipf_packets rng z n =
  List.init n (fun _ -> packet_of_index (zipf_draw z rng))

let heavy_tail_packets rng z ~alpha ~max_burst n =
  (* popular flows picked by rank, each sending a Pareto-sized burst *)
  let rec go acc left =
    if left <= 0 then List.rev acc
    else
      let i = zipf_draw z rng in
      let burst = min left (pareto_size rng ~alpha ~lo:1 ~hi:max_burst) in
      let pkt = packet_of_index i in
      let rec emit acc k =
        if k = 0 then acc else emit (Net.Packet.copy pkt :: acc) (k - 1)
      in
      go (emit acc burst) (left - burst)
  in
  go [] n

let churn_packets ~offset n = List.init n (fun k -> packet_of_index (offset + k))

(* ---- Packet-realizable collision floods ------------------------------- *)

(* {!Adversarial.colliding_flows} draws arbitrary 30-bit key words, which
   no real packet can carry (ports are 16 bits).  For the soak bench the
   flood must arrive as packets, so rejection-sample over realizable
   5-tuples until [n] distinct flows chain into [bucket]. *)
let nat_collision_flows nat rng ~bucket n =
  let seen = Hashtbl.create n in
  let rec draw acc k guard =
    if k = 0 then List.rev acc
    else if guard > 50_000_000 then
      invalid_arg "Soak.nat_collision_flows: bucket too selective"
    else
      let f =
        Net.Flow.make
          ~src_ip:
            (Net.Ipv4.addr_of_parts 10 (Prng.below rng 256)
               (Prng.below rng 256) (Prng.below rng 256))
          ~dst_ip:(Net.Ipv4.addr_of_parts 93 0 0 1)
          ~src_port:(Prng.range rng ~lo:1024 ~hi:65535)
          ~dst_port:80 ~proto:Net.Ipv4.proto_udp
      in
      let key =
        [| f.Net.Flow.src_ip; f.Net.Flow.dst_ip; f.Net.Flow.src_port;
           f.Net.Flow.dst_port; f.Net.Flow.proto |]
      in
      if
        Dslib.Nat_table.hash_of_flow nat key = bucket
        && not (Hashtbl.mem seen f)
      then begin
        Hashtbl.add seen f ();
        draw (f :: acc) (k - 1) (guard + 1)
      end
      else draw acc k (guard + 1)
  in
  draw [] n 0

let packets_of_flows flows =
  List.map (fun f -> Net.Build.udp_of_flow f) flows

(* ---- Prefix patterns aimed at LPM -------------------------------------- *)

(* {!Gen.lpm_destinations} rejection-samples the whole address space,
   which cannot sustain a large flood when only a few /24 slots are
   extended.  An attacker knows the FIB: aim every packet inside the one
   extended slot and every lookup pays the second (tbl8) access. *)
let lpm_attack_packets rng lpm ~slot n =
  if not (Dslib.Lpm_dir24_8.uses_tbl8 lpm slot) then
    invalid_arg "Soak.lpm_attack_packets: slot is not tbl8-extended";
  List.init n (fun _ ->
      Net.Build.udp
        ~src_ip:(Net.Ipv4.addr_of_parts 10 0 0 1)
        ~dst_ip:((slot land 0xffff_ff00) lor Prng.below rng 256)
        ~src_port:5000 ~dst_port:80 ())
