(** Timed packet streams — what the traffic generator replays into an NF
    (the MoonGen stand-in). *)

type entry = { packet : Net.Packet.t; now : int; in_port : int }
type t = entry list

val entry : ?in_port:int -> ?now:int -> Net.Packet.t -> entry

val constant_rate : ?in_port:int -> start:int -> gap:int ->
  Net.Packet.t list -> t
(** Stamp packets [gap] time units apart, beginning at [start]. *)

val to_pcap : t -> Net.Pcap.record list
val of_pcap : ?in_port:int -> Net.Pcap.record list -> t
val length : t -> int

(** {1 Sharding helpers}

    A sharded dataplane slices one arrival stream into per-shard
    sub-streams and prices the slicing's balance; both operations are
    generic in the steering function so the dispatcher (and tests) can
    reuse them. *)

val histogram : bins:int -> by:(entry -> int) -> t -> int array
(** Per-bin entry counts under the steering function [by] — the
    flow-hash histogram whose maximum is the scalability contract's
    skew term.  Raises [Invalid_argument] if [by] leaves [0, bins). *)

val partition : bins:int -> by:(entry -> int) -> t -> t array
(** Slice the stream into [bins] sub-streams, preserving arrival order
    within each: the shared-nothing shard queues of the dataplane.
    Entries are shared, not copied. *)
