(** Adversarial state synthesis (the CASTAN stand-in, paper §5.1).

    The paper could not build the mass-expiry worst case from a packet
    trace either — they "modified the NF to synthesise the expected
    state".  These helpers do the same: they install, without charging any
    meter, a full table whose entries all chain in one bucket and are all
    past their timeout, so the next packet triggers the pathological
    expiry the Br1/NAT1/LB1 contracts bound. *)

val colliding_flows :
  ?budget:int -> Prng.t -> hash:(int array -> int) -> key_len:int ->
  bucket:int -> int -> int array list
(** [n] distinct keys that all hash to [bucket], rejection-sampled.
    Raises [Invalid_argument] — naming the hash's bucket, the key width,
    how many keys were found and the draw budget — when [budget]
    (default 10^8) draws cannot produce them, e.g. because the bucket is
    unreachable under the table's hash seed. *)

val fill_nat_collided :
  Dslib.Nat_table.t -> Prng.t -> stamped_at:int -> unit
(** Fill the NAT table to capacity with same-bucket flows stamped at
    [stamped_at] (so they all expire once [now > stamped_at + timeout]). *)

val fill_flow_table_collided :
  Dslib.Flow_table.t -> Prng.t -> value:int -> stamped_at:int -> unit

val fill_mac_table_collided :
  Dslib.Mac_table.t -> Prng.t -> port:int -> stamped_at:int -> unit

val trigger_packet : unit -> Net.Packet.t
(** A benign packet whose arrival detonates the synthesized state. *)
