type entry = { packet : Net.Packet.t; now : int; in_port : int }
type t = entry list

let entry ?(in_port = 0) ?(now = 1_000_000) packet = { packet; now; in_port }

let constant_rate ?(in_port = 0) ~start ~gap packets =
  List.mapi
    (fun i packet -> { packet; now = start + (i * gap); in_port })
    packets

let to_pcap t =
  List.map
    (fun { packet; now; _ } ->
      {
        Net.Pcap.ts_sec = now / 1_000_000;
        ts_usec = now mod 1_000_000;
        packet;
      })
    t

let of_pcap ?(in_port = 0) records =
  List.map
    (fun { Net.Pcap.ts_sec; ts_usec; packet } ->
      { packet; now = (ts_sec * 1_000_000) + ts_usec; in_port })
    records

let length = List.length

let check_bin ~bins b =
  if b < 0 || b >= bins then
    invalid_arg
      (Printf.sprintf "Stream: steering function returned bin %d of %d" b
         bins)

let histogram ~bins ~by t =
  let h = Array.make bins 0 in
  List.iter
    (fun e ->
      let b = by e in
      check_bin ~bins b;
      h.(b) <- h.(b) + 1)
    t;
  h

let partition ~bins ~by t =
  let rev = Array.make bins [] in
  List.iter
    (fun e ->
      let b = by e in
      check_bin ~bins b;
      rev.(b) <- e :: rev.(b))
    t;
  Array.map List.rev rev
