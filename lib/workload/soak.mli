(** Production-shaped soak workloads for [bench soak]: Zipf flow
    popularity, heavy-tailed flow sizes, churn over millions of distinct
    flows, and packet-realizable collision floods.  Everything is
    deterministic under a seeded {!Prng}. *)

type zipf
(** A precomputed Zipf CDF over flow ranks; drawing is O(log n). *)

val zipf : n:int -> theta:float -> zipf
(** Popularity over ranks [0..n-1] with P(rank) proportional to
    1/(rank+1)^theta.  Raises [Invalid_argument] when [n < 1]. *)

val zipf_draw : zipf -> Prng.t -> int
(** Draw a rank. *)

val pareto_size : Prng.t -> alpha:float -> lo:int -> hi:int -> int
(** Bounded-Pareto flow size on [lo, hi] — heavy-tailed: most flows are
    mice, a few elephants dominate the packet count. *)

val flow_of_index : int -> Net.Flow.t
(** Flow [i] of a deterministic universe, distinct for [i] < 2^24 —
    internal 10.0.0.0/8 sources towards one external destination, so
    every flow takes the NAT's internal path. *)

val packet_of_index : int -> Net.Packet.t
(** [Net.Build.udp_of_flow (flow_of_index i)]. *)

val zipf_packets : Prng.t -> zipf -> int -> Net.Packet.t list
(** [n] packets whose flows are Zipf-popular ranks of the universe. *)

val heavy_tail_packets :
  Prng.t -> zipf -> alpha:float -> max_burst:int -> int -> Net.Packet.t list
(** [n] packets as back-to-back bursts: each burst belongs to one
    Zipf-drawn flow and has a bounded-Pareto size in [1, max_burst]. *)

val churn_packets : offset:int -> int -> Net.Packet.t list
(** [n] packets of [n] brand-new distinct flows starting at universe
    index [offset] — chunked generation for million-flow churn without
    materialising the whole stream. *)

val nat_collision_flows :
  Dslib.Nat_table.t -> Prng.t -> bucket:int -> int -> Net.Flow.t list
(** [n] distinct packet-realizable flows (16-bit ports, 10.x sources)
    whose NAT flow keys all chain into [bucket] of the given table —
    rejection-sampled against {!Dslib.Nat_table.hash_of_flow}, unlike
    {!Adversarial.colliding_flows} whose raw key words no real packet
    can carry. *)

val packets_of_flows : Net.Flow.t list -> Net.Packet.t list

val lpm_attack_packets :
  Prng.t -> Dslib.Lpm_dir24_8.t -> slot:int -> int -> Net.Packet.t list
(** [n] packets whose destinations all land inside the tbl8-extended /24
    slot covering [slot], so every lookup takes the two-access long
    path — the prefix-pattern attack.  Raises [Invalid_argument] when the
    slot is not extended in the given table. *)
