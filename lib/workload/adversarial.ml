let quiet_meter () = Exec.Meter.create (Hw.Model.null ())

let colliding_flows ?(budget = 100_000_000) rng ~hash ~key_len ~bucket n =
  if budget < 1 then invalid_arg "Adversarial.colliding_flows: budget < 1";
  let seen = Hashtbl.create n in
  let rec draw acc k guard =
    if k = 0 then List.rev acc
    else if guard = 0 then
      invalid_arg
        (Printf.sprintf
           "Adversarial.colliding_flows: search budget exhausted after %d \
            draws — found %d of %d distinct %d-word keys hashing to bucket \
            %d (is the bucket reachable under this hash?)"
           budget (n - k) n key_len bucket)
    else
      let key =
        Array.init key_len (fun i ->
            if i = key_len - 1 then Net.Ipv4.proto_udp
            else Prng.below rng (1 lsl 30))
      in
      if hash key = bucket && not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        draw (key :: acc) (k - 1) (guard - 1)
      end
      else draw acc k (guard - 1)
  in
  draw [] n budget

let fill_nat_collided nat rng ~stamped_at =
  let meter = quiet_meter () in
  let cap = Dslib.Nat_table.capacity nat in
  let keys =
    colliding_flows rng
      ~hash:(Dslib.Nat_table.hash_of_flow nat)
      ~key_len:Dslib.Nat_table.key_len ~bucket:0 cap
  in
  List.iter
    (fun key ->
      let port = Dslib.Nat_table.add_int nat meter key ~now:stamped_at in
      if port < 0 then failwith "fill_nat_collided: table or ports exhausted")
    keys

let fill_flow_table_collided ft rng ~value ~stamped_at =
  let meter = quiet_meter () in
  let cap = Dslib.Flow_table.capacity ft in
  let keys =
    colliding_flows rng
      ~hash:(Dslib.Flow_table.hash_of_key ft)
      ~key_len:(Dslib.Flow_table.key_len ft) ~bucket:0 cap
  in
  List.iter
    (fun key ->
      let idx = Dslib.Flow_table.put ft meter key ~value ~now:stamped_at in
      if idx < 0 then failwith "fill_flow_table_collided: table full")
    keys

let fill_mac_table_collided table rng ~port ~stamped_at =
  let cap = Dslib.Mac_table.capacity table in
  let seen = Hashtbl.create cap in
  let rec install k guard =
    if k = 0 then ()
    else if guard = 0 then
      failwith "fill_mac_table_collided: search budget exhausted"
    else
      let mac = 0x020000000000 lor Prng.below rng 0xffffffffff in
      if
        Dslib.Mac_table.hash_of_mac table mac = 0
        && not (Hashtbl.mem seen mac)
      then begin
        Hashtbl.add seen mac ();
        (* bypass [learn]: the defence would rehash a long chain away, but
           the attacker we model controls the state directly (paper §5.1:
           "we modified the NF to synthesise the necessary state") *)
        Dslib.Mac_table.install_quiet table ~mac ~port ~now:stamped_at;
        install (k - 1) (guard - 1)
      end
      else install k (guard - 1)
  in
  install cap 100_000_000

let trigger_packet () =
  Net.Build.udp
    ~src_ip:(Net.Ipv4.addr_of_parts 10 0 0 9)
    ~dst_ip:(Net.Ipv4.addr_of_parts 93 184 216 34)
    ~src_port:5555 ~dst_port:80 ()
