let flow rng ?proto () =
  let proto =
    match proto with
    | Some p -> p
    | None ->
        if Prng.bool rng 0.5 then Net.Ipv4.proto_tcp else Net.Ipv4.proto_udp
  in
  Net.Flow.make
    ~src_ip:(Net.Ipv4.addr_of_parts 10 0 (Prng.below rng 256) (Prng.below rng 256))
    ~dst_ip:(Net.Ipv4.addr_of_parts 93 (Prng.below rng 256) (Prng.below rng 256) (Prng.below rng 256))
    ~src_port:(Prng.range rng ~lo:1024 ~hi:65535)
    ~dst_port:(Prng.range rng ~lo:1 ~hi:1023)
    ~proto

let distinct_flows rng ?proto n =
  let seen = Hashtbl.create n in
  let rec draw acc k =
    if k = 0 then List.rev acc
    else
      let f = flow rng ?proto () in
      if Hashtbl.mem seen f then draw acc k
      else begin
        Hashtbl.add seen f ();
        draw (f :: acc) (k - 1)
      end
  in
  draw [] n

let packets_of_flows flows = List.map (fun f -> Net.Build.udp_of_flow f) flows

let mac rng = 0x020000000000 lor Prng.below rng 0xffffffff

let broadcast_frames rng ~srcs n =
  let srcs = Array.of_list srcs in
  List.init n (fun i ->
      ignore rng;
      Net.Build.eth
        ~src_mac:srcs.(i mod Array.length srcs)
        ~dst_mac:Net.Ethernet.broadcast_mac
        ~ethertype:Net.Ethernet.ethertype_ipv4 ())

let unicast_frames rng ~srcs ~dsts n =
  let srcs = Array.of_list srcs and dsts = Array.of_list dsts in
  List.init n (fun _ ->
      Net.Build.eth
        ~src_mac:srcs.(Prng.below rng (Array.length srcs))
        ~dst_mac:dsts.(Prng.below rng (Array.length dsts))
        ~ethertype:Net.Ethernet.ethertype_ipv4 ())

let heartbeat_frames ~backend_ids ~port =
  List.map
    (fun b ->
      Net.Build.udp
        ~src_ip:(Net.Ipv4.addr_of_parts 10 1 0 b)
        ~dst_ip:(Net.Ipv4.addr_of_parts 198 51 100 1)
        ~src_port:4000 ~dst_port:port ())
    backend_ids

let churn rng ~pool ~packets ~new_flow_prob ~gap ~start =
  let live = Array.init pool (fun _ -> flow rng ()) in
  List.init packets (fun i ->
      let f =
        if Prng.bool rng new_flow_prob then begin
          (* a new flow replaces a random live one *)
          let slot = Prng.below rng pool in
          let f = flow rng () in
          live.(slot) <- f;
          f
        end
        else live.(Prng.below rng pool)
      in
      {
        Stream.packet = Net.Build.udp_of_flow f;
        now = start + (i * gap);
        in_port = 0;
      })

let mutate rng packet =
  let p = Net.Packet.copy packet in
  let len = Net.Packet.length p in
  if len > 0 then begin
    let flips = 1 + Prng.below rng 4 in
    for _ = 1 to flips do
      let off = Prng.below rng len in
      Net.Packet.set_u8 p off (Prng.below rng 256)
    done
  end;
  p

let lpm_destinations rng lpm ~long n =
  let rec draw acc k guard =
    if k = 0 || guard = 0 then List.rev acc
    else
      let dst =
        Net.Ipv4.addr_of_parts (Prng.below rng 224) (Prng.below rng 256)
          (Prng.below rng 256) (Prng.below rng 256)
      in
      if Dslib.Lpm_dir24_8.uses_tbl8 lpm dst = long then
        draw (dst :: acc) (k - 1) (guard - 1)
      else draw acc k (guard - 1)
  in
  let dsts = draw [] n 1_000_000 in
  List.map
    (fun dst ->
      Net.Build.udp
        ~src_ip:(Net.Ipv4.addr_of_parts 10 0 0 1)
        ~dst_ip:dst ~src_port:5000 ~dst_port:80 ())
    dsts
