(** Workload generators for the paper's input packet classes. *)

val flow : Prng.t -> ?proto:int -> unit -> Net.Flow.t
(** A random internal-network flow (10.0.0.0/16 sources). *)

val distinct_flows : Prng.t -> ?proto:int -> int -> Net.Flow.t list
(** n flows with distinct 5-tuples. *)

val packets_of_flows : Net.Flow.t list -> Net.Packet.t list

(** {1 Bridge traffic} *)

val mac : Prng.t -> int
val broadcast_frames : Prng.t -> srcs:int list -> int -> Net.Packet.t list
(** Frames to ff:ff:…, with sources drawn round-robin from [srcs]. *)

val unicast_frames :
  Prng.t -> srcs:int list -> dsts:int list -> int -> Net.Packet.t list

(** {1 Load-balancer traffic} *)

val heartbeat_frames : backend_ids:int list -> port:int -> Net.Packet.t list
(** One heartbeat per backend (source 10.1.0.b, UDP dst [port]). *)

(** {1 Churn}

    A stream alternating between a pool of live flows and newly created
    ones; [new_flow_prob] controls churn (paper §5.3: low churn = many
    long-lived flows, high churn = few short-lived ones). *)

val churn :
  Prng.t -> pool:int -> packets:int -> new_flow_prob:float -> gap:int ->
  start:int -> Stream.t

(** {1 Mutation} *)

val mutate : Prng.t -> Net.Packet.t -> Net.Packet.t
(** A copy of the packet with 1–4 random bytes rewritten — the fuzzer's
    header-corruption generator.  The buffer length is preserved, so the
    result is still safe to feed any NF that bounds-checks with
    [Pkt_len]. *)

(** {1 LPM traffic} *)

val lpm_destinations :
  Prng.t -> Dslib.Lpm_dir24_8.t -> long:bool -> int -> Net.Packet.t list
(** Destinations forced onto the two-lookup ([long]) or one-lookup path —
    the CASTAN-style adversarial generator for LPM1. *)
