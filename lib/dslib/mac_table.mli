(** MAC learning table with a collision-attack defence (paper §5.2).

    A {!Flow_table} keyed by 48-bit MAC (one word) whose hash is keyed by a
    random seed.  If a [learn] probe traverses more than [threshold]
    buckets, the table assumes an algorithmic-complexity attack, draws a
    new seed and rehashes — an expensive cliff (Table 4) whose threshold
    the operator tunes with the Distiller (Figure 2). *)

type t

val create :
  ?seed:int -> base:int -> capacity:int -> buckets:int -> timeout:int ->
  threshold:int -> unit -> t

val size : t -> int
val capacity : t -> int
val threshold : t -> int
val rehash_count : t -> int
(** How many times the defence has fired. *)

val expire : t -> Exec.Meter.t -> now:int -> int
val learn : t -> Exec.Meter.t -> mac:int -> port:int -> now:int -> unit
(** Learn the source MAC.  Known MACs are refreshed; unknown ones are
    inserted — rehashing first when the probe exceeded the threshold. *)

val lookup : t -> Exec.Meter.t -> mac:int -> int
(** Destination lookup: output port, or [-1] (flood). *)

val hash_of_mac : t -> int -> int

val install_quiet : t -> mac:int -> port:int -> now:int -> unit
(** Insert without charges and without the rehash defence — state
    synthesis for the pathological-workload experiments. *)

val last_learn_traversals : t -> int
(** Probe length of the most recent [learn] (uncharged — tests and the
    Distiller read it). *)

(** {1 Specialized fast paths}

    Sink twins of the metered operations; see {!Dslib.Hash_map}.  The
    one-word MAC key is read in place at [key.(off)]. *)

val fast_expire : t -> Exec.Ds.sink -> now:int -> int
val fast_learn :
  t -> Exec.Ds.sink -> int array -> off:int -> port:int -> now:int -> unit
val fast_lookup : t -> Exec.Ds.sink -> int array -> off:int -> int

val to_ds : t -> Exec.Ds.t
(** Methods: [expire(now)], [learn(mac, port, now)], [lookup(mac)].
    All three carry fast paths. *)

val kind : string

module Recipe : sig
  val contract : buckets:int -> capacity:int -> Perf.Ds_contract.t list
  (** Method contracts; the rehash branch's fixed part covers the bucket
      sweep, hence the [buckets]/[capacity] parameters. *)
end
