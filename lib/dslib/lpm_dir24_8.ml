let kind = "lpm"

(* tbl24 entries: port, or (0x8000 lor group) when extended to tbl8.
   Backing storage is sparse (hashtables) — only the address arithmetic
   needs to look like the 64 MB DPDK layout. *)
type t = {
  tbl24 : (int, int) Hashtbl.t;
  tbl8 : (int, int) Hashtbl.t;
  base : int;
  tbl8_base : int;
  default_port : int;
  mutable next_group : int;
}

let extended_flag = 0x8000

let create ~base ~default_port =
  {
    tbl24 = Hashtbl.create 1024;
    tbl8 = Hashtbl.create 256;
    base;
    tbl8_base = base + (16 * 1024 * 1024);
    default_port;
    next_group = 0;
  }

let tbl24_get t i =
  match Hashtbl.find_opt t.tbl24 i with
  | Some v -> v
  | None -> t.default_port

let tbl8_get t i =
  match Hashtbl.find_opt t.tbl8 i with
  | Some v -> v
  | None -> t.default_port

let add_route t ~prefix ~len ~port =
  if len < 10 || len > 32 then
    invalid_arg "Lpm_dir24_8.add_route: len must be in 10..32";
  if len <= 24 then begin
    let first = prefix lsr 8 in
    let count = 1 lsl (24 - len) in
    for i = first to first + count - 1 do
      (* never clobber an extended entry installed by a longer prefix *)
      match Hashtbl.find_opt t.tbl24 i with
      | Some v when v land extended_flag <> 0 -> ()
      | _ -> Hashtbl.replace t.tbl24 i port
    done
  end
  else begin
    let slot24 = prefix lsr 8 in
    let group =
      match Hashtbl.find_opt t.tbl24 slot24 with
      | Some v when v land extended_flag <> 0 -> v land lnot extended_flag
      | existing ->
          let g = t.next_group in
          t.next_group <- g + 1;
          (* seed the new group with the previous shorter-prefix port *)
          let fallback =
            match existing with Some v -> v | None -> t.default_port
          in
          for b = 0 to 255 do
            Hashtbl.replace t.tbl8 ((g * 256) + b) fallback
          done;
          Hashtbl.replace t.tbl24 slot24 (extended_flag lor g);
          g
    in
    let first = prefix land 0xff in
    let count = 1 lsl (32 - len) in
    for b = first to first + count - 1 do
      Hashtbl.replace t.tbl8 ((group * 256) + b) port
    done
  end

let lookup t meter ip =
  Costing.charge_alu meter 2;
  let slot24 = ip lsr 8 in
  Costing.charge_load meter ~addr:(t.base + (2 * slot24)) ();
  Costing.charge_branch meter 1;
  let entry = tbl24_get t slot24 in
  if entry land extended_flag = 0 then begin
    Exec.Meter.observe meter Perf.Pcv.prefix_len 24;
    Costing.charge_alu meter 1;
    entry
  end
  else begin
    let group = entry land lnot extended_flag in
    Costing.charge_alu meter 3;
    let slot8 = (group * 256) + (ip land 0xff) in
    Costing.charge_load meter ~dependent:true ~addr:(t.tbl8_base + slot8) ();
    Costing.charge_alu meter 1;
    Exec.Meter.observe meter Perf.Pcv.prefix_len 32;
    tbl8_get t slot8
  end

let lookup_quiet t ip =
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  lookup t meter ip

let uses_tbl8 t ip = tbl24_get t (ip lsr 8) land extended_flag <> 0

(* The first tier is a fixed 16 MiB reservation (the address arithmetic in
   [lookup] places [tbl8_base] at base + 16 MiB); each second-tier group
   spans 256 consecutive byte slots. *)
let footprint_bytes t = (16 * 1024 * 1024) + (256 * t.next_group)

let to_ds t =
  let call meter meth (args : int array) =
    match meth with
    | "lookup" -> lookup t meter args.(0)
    | other -> invalid_arg ("lpm: unknown method " ^ other)
  in
  Exec.Ds.make ~kind call

module Recipe = struct
  open Perf

  let vec ~ic ~ma ~lines =
    Cost_vec.make ~ic:(Perf_expr.const ic) ~ma:(Perf_expr.const ma)
      ~cycles:(Costing.cycles_upper ~ic:(Perf_expr.const ic)
                 ~ma:(Perf_expr.const lines))

  let contract =
    let open Ds_contract in
    [
      make ~ds_kind:kind ~meth:"lookup"
        [
          branch ~tag:"short" ~note:"matched prefix <= 24 bits: one lookup"
            (vec ~ic:5 ~ma:1 ~lines:1);
          branch ~tag:"long" ~note:"matched prefix > 24 bits: two lookups"
            (vec ~ic:9 ~ma:2 ~lines:2);
        ];
    ]
end
