(** Patricia-trie LPM — the paper's running example (§2.1, Algorithm 1).

    The lookup walks the destination address bit by bit from the most
    significant end; its cost is linear in the matched prefix length [l],
    the PCV of the stylised contracts of Tables 1 and 2.  The charging is
    calibrated so the method costs are {e exactly} the paper's
    [4·l + 2] instructions and [l + 1] memory accesses. *)

type t

val create : base:int -> default_port:int -> t
val add_route : t -> prefix:int -> len:int -> port:int -> unit
(** Configuration-time (uncharged); [len] in 0..32. *)

val lookup : t -> Exec.Meter.t -> int -> int
(** Longest-prefix-match port.  Observes PCV [l]. *)

val lookup_quiet : t -> int -> int
val matched_len : t -> int -> int
(** Depth at which the walk for this address stops (uncharged). *)

val footprint_bytes : t -> int
(** Bytes of the layout's address space the trie occupies: one 64-byte
    node per line, root included. *)

val to_ds : t -> Exec.Ds.t
val kind : string

module Recipe : sig
  val lookup_cost : Perf.Cost_vec.t
  (** [4·l + 2] instructions, [l + 1] accesses — paper Table 2. *)

  val contract : Perf.Ds_contract.t list
end
