(** Flow table: a {!Hash_map} with per-entry timestamps and LRU-ordered
    expiry — the stateful heart of the NAT, the load balancer and (via
    {!Mac_table}) the bridge.

    Expiring [e] entries costs, per entry, one hash-map removal — whose own
    cost depends on the collisions [c] and traversals [t] that removal
    incurs.  That is precisely where the [e·c] and [e·t] terms of the
    paper's VigNAT contract (Table 6) come from.

    The [granularity] knob reproduces the VigNAT performance bug
    (paper §5.3): timestamps are quantised to it, so with second-sized
    granularity every flow that should have expired during the previous
    second expires in one batch at the tick boundary. *)

type t

val create :
  ?seed:int -> base:int -> key_len:int -> capacity:int -> buckets:int ->
  timeout:int -> ?granularity:int ->
  ?on_expire:(Exec.Meter.t -> value:int -> unit) ->
  ?on_expire_fast:(Exec.Ds.sink -> value:int -> unit) -> unit -> t
(** [timeout] and [granularity] are in the same time unit as [now]
    (microseconds by convention; granularity defaults to 1 — exact
    timestamps). [on_expire] runs for each expired entry (the NAT frees
    the flow's external port there); [on_expire_fast] is its sink twin —
    without it, a table with an [on_expire] callback offers no
    specialized [expire]. *)

val size : t -> int
val capacity : t -> int
val key_len : t -> int

val expire : t -> Exec.Meter.t -> now:int -> int
(** Expire every entry older than [timeout]; returns the count and
    observes it as PCV [e]. *)

val get : t -> Exec.Meter.t -> int array -> now:int -> int option
(** Lookup; on a hit the entry is refreshed (timestamp + LRU tail). *)

val put : t -> Exec.Meter.t -> int array -> value:int -> now:int -> int
(** Insert (or update) and stamp; returns the node index, or [-1] when
    full. *)

val refresh_entry : t -> Exec.Meter.t -> int -> now:int -> unit
(** Re-stamp an entry and move it to the LRU tail (what a hit does). *)

val map : t -> Hash_map.t
(** The underlying hash map (for reseeding and tests). *)

val get_probe :
  t -> Exec.Meter.t -> int array -> now:int -> int option * Hash_map.probe
(** Like {!get}, also returning the probe counters — the MAC table's
    rehash defence triggers on the traversal count. *)

val mem_quiet : t -> int array -> bool
(** Uncharged lookup, for tests and workload synthesis. *)

val key_at : t -> int -> int array
val value_at : t -> int -> int
val hash_of_key : t -> int array -> int
val oldest_first : t -> int list
(** Node indices in LRU order (uncharged — tests). *)

(** {1 Specialized fast paths}

    Sink twins of the metered operations; see {!Hash_map}. *)

val fast_expire : t -> Exec.Ds.sink -> now:int -> int
(** Only sound when [on_expire] is absent or has its sink twin. *)

val fast_get : t -> Exec.Ds.sink -> int array -> off:int -> now:int -> int
(** Value or [-1] (the [to_ds] "get" encoding); refreshes on hit. *)

val fast_put :
  t -> Exec.Ds.sink -> int array -> off:int -> value:int -> now:int -> int

val fast_refresh_entry : t -> Exec.Ds.sink -> int -> now:int -> unit
val fast_size : t -> Exec.Ds.sink -> int

val key_word_at : t -> int -> int -> int
(** In-place key word read (no charges, no copy). *)

val to_ds : t -> Exec.Ds.t
(** Methods: [expire(now)] → count; [get(key…, now)] → value or -1;
    [put(key…, value, now)] → index or -1; [size()].  All four methods
    carry fast paths (expire only when specializable — see
    {!create}). *)

val kind : string

(** {1 Contract recipes} *)

module Recipe : sig
  val refresh : Perf.Cost_vec.t
  (** Cost of re-stamping an entry and moving it to the LRU tail. *)

  val get_hit : key_len:int -> Perf.Cost_vec.t
  val get_miss : key_len:int -> Perf.Cost_vec.t
  val put_new : key_len:int -> Perf.Cost_vec.t
  val put_full : key_len:int -> Perf.Cost_vec.t

  val expire : key_len:int -> per_entry_extra:Perf.Cost_vec.t ->
    Perf.Cost_vec.t
  (** Cost over PCVs [e], [c], [t]; [per_entry_extra] is the cost of the
      [on_expire] callback (e.g. the port allocator's free). *)

  val contract : key_len:int -> ?free_cost:Perf.Cost_vec.t -> unit ->
    Perf.Ds_contract.t list
  (** The method contracts for this kind, as registered in the library. *)
end
