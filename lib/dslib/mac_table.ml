let kind = "mac_table"
let key_len = 1

type t = {
  ft : Flow_table.t;
  threshold : int;
  mutable rehashes : int;
  mutable seed_state : int;
  mutable last_traversals : int;
}

let create ?seed ~base ~capacity ~buckets ~timeout ~threshold () =
  if threshold < 1 then invalid_arg "Mac_table.create: threshold must be >= 1";
  {
    ft =
      Flow_table.create ?seed ~base ~key_len ~capacity ~buckets ~timeout ();
    threshold;
    rehashes = 0;
    seed_state = (match seed with Some s -> s | None -> 17);
    last_traversals = 0;
  }

let size t = Flow_table.size t.ft
let capacity t = Flow_table.capacity t.ft
let threshold t = t.threshold
let rehash_count t = t.rehashes
let expire t meter ~now = Flow_table.expire t.ft meter ~now
let hash_of_mac t mac = Flow_table.hash_of_key t.ft [| mac |]

let install_quiet t ~mac ~port ~now =
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  if Flow_table.put t.ft meter [| mac |] ~value:port ~now < 0 then
    invalid_arg "Mac_table.install_quiet: table full"
let last_learn_traversals t = t.last_traversals

(* Deterministic LCG so runs are reproducible. *)
let next_seed t =
  t.seed_state <- ((t.seed_state * 6364136223) + 1442695041) land max_int;
  t.seed_state

let learn t meter ~mac ~port ~now =
  let key = [| mac |] in
  let value, probe = Flow_table.get_probe t.ft meter key ~now in
  t.last_traversals <- probe.Hash_map.traversals;
  Exec.Meter.observe meter Perf.Pcv.occupancy (Flow_table.size t.ft);
  Costing.charge_branch meter 1;
  match value with
  | Some old_port ->
      Costing.charge_branch meter 1;
      if old_port <> port then begin
        let map = Flow_table.map t.ft in
        Hash_map.set_value map meter probe.Hash_map.result port
      end
  | None ->
      Costing.charge_alu meter 1;
      Costing.charge_branch meter 1;
      if probe.Hash_map.traversals > t.threshold then begin
        t.rehashes <- t.rehashes + 1;
        Hash_map.reseed (Flow_table.map t.ft) meter ~seed:(next_seed t)
      end;
      ignore (Flow_table.put t.ft meter key ~value:port ~now)

let lookup t meter ~mac =
  let map = Flow_table.map t.ft in
  let probe = Hash_map.get map meter [| mac |] in
  if probe.Hash_map.result < 0 then -1
  else Hash_map.value_of map meter probe.Hash_map.result

(* ---- specialized fast paths ----------------------------------------

   Sink twins of the metered operations; see {!Hash_map} for the
   discipline.  The MAC key is read in place from argv (key_len = 1, so
   [key.(off)] is the MAC). *)

module S = Costing.Sink

let fast_expire t s ~now = Flow_table.fast_expire t.ft s ~now

let fast_learn t s (key : int array) ~off ~port ~now =
  let map = Flow_table.map t.ft in
  (* inline [Flow_table.get_probe]: probe, then refresh + value read on
     a hit *)
  let node = Hash_map.fast_get map s key ~off in
  let value =
    if node < 0 then -1
    else begin
      Flow_table.fast_refresh_entry t.ft s node ~now;
      Hash_map.fast_value_of map s node
    end
  in
  t.last_traversals <- Hash_map.last_fast_traversals map;
  S.observe s Perf.Pcv.occupancy (Flow_table.size t.ft);
  S.branch s 1;
  if node >= 0 then begin
    S.branch s 1;
    if value <> port then Hash_map.fast_set_value map s node port
  end
  else begin
    S.alu s 1;
    S.branch s 1;
    if Hash_map.last_fast_traversals map > t.threshold then begin
      t.rehashes <- t.rehashes + 1;
      Hash_map.fast_reseed map s ~seed:(next_seed t)
    end;
    ignore (Flow_table.fast_put t.ft s key ~off ~value:port ~now)
  end

let fast_lookup t s (key : int array) ~off =
  let map = Flow_table.map t.ft in
  let node = Hash_map.fast_get map s key ~off in
  if node < 0 then -1 else Hash_map.fast_value_of map s node

let to_ds t =
  let call meter meth (args : int array) =
    match meth with
    | "expire" -> expire t meter ~now:args.(0)
    | "learn" ->
        learn t meter ~mac:args.(0) ~port:args.(1) ~now:args.(2);
        0
    | "lookup" -> lookup t meter ~mac:args.(0)
    | other -> invalid_arg ("mac_table: unknown method " ^ other)
  in
  let fast_path (s : Exec.Ds.sink) meth =
    match meth with
    | "expire" -> Some (fun (args : int array) -> fast_expire t s ~now:args.(0))
    | "learn" ->
        Some
          (fun args ->
            fast_learn t s args ~off:0 ~port:args.(1) ~now:args.(2);
            0)
    | "lookup" -> Some (fun args -> fast_lookup t s args ~off:0)
    | _ -> None
  in
  Exec.Ds.make ~fast_path ~kind call

module Recipe = struct
  open Perf

  let const_vec ~ic ~ma ~lines =
    Cost_vec.make ~ic:(Perf_expr.const ic) ~ma:(Perf_expr.const ma)
      ~cycles:(Costing.cycles_upper ~ic:(Perf_expr.const ic)
                 ~ma:(Perf_expr.const lines))

  let learn_known =
    Cost_vec.add (Flow_table.Recipe.get_hit ~key_len)
      (const_vec ~ic:4 ~ma:1 ~lines:1)

  let learn_new =
    Cost_vec.sum
      [
        Flow_table.Recipe.get_miss ~key_len;
        Flow_table.Recipe.put_new ~key_len;
        const_vec ~ic:4 ~ma:0 ~lines:0;
      ]

  let learn_full =
    Cost_vec.sum
      [
        Flow_table.Recipe.get_miss ~key_len;
        Flow_table.Recipe.put_full ~key_len;
        const_vec ~ic:4 ~ma:0 ~lines:0;
      ]

  (* Rehash: clear every bucket, then per resident entry a key read, hash,
     two stores and a duplicate-check walk of its new chain (≤ t). *)
  let rehash_extra ~buckets ~capacity =
    let o = Pcv.occupancy and t_ = Pcv.traversals in
    let ic =
      Perf_expr.sum
        [
          Perf_expr.const (buckets + capacity + 4);
          Perf_expr.term 12 [ o ];
          Perf_expr.term 4 [ t_; o ];
        ]
    in
    let ma =
      Perf_expr.sum
        [
          Perf_expr.const buckets;
          Perf_expr.term 5 [ o ];
          Perf_expr.term 1 [ t_; o ];
        ]
    in
    let lines =
      Perf_expr.sum
        [
          Perf_expr.const ((buckets / 8) + 2);
          Perf_expr.term 2 [ o ];
          Perf_expr.term 1 [ t_; o ];
        ]
    in
    Cost_vec.make ~ic ~ma ~cycles:(Costing.cycles_upper ~ic ~ma:lines)

  let contract ~buckets ~capacity =
    let open Ds_contract in
    [
      make ~ds_kind:kind ~meth:"expire"
        [
          branch ~tag:"expire" ~note:"e MAC entries past their timeout"
            (Flow_table.Recipe.expire ~key_len
               ~per_entry_extra:Cost_vec.zero);
        ];
      make ~ds_kind:kind ~meth:"learn"
        [
          branch ~tag:"known" ~note:"source MAC already present" learn_known;
          branch ~tag:"learned" ~note:"unknown source MAC, no rehashing"
            learn_new;
          branch ~tag:"rehash"
            ~note:"unknown source MAC, probe exceeded threshold"
            (Cost_vec.add learn_new (rehash_extra ~buckets ~capacity));
          branch ~tag:"full" ~note:"table full, MAC not learned" learn_full;
        ];
      make ~ds_kind:kind ~meth:"lookup"
        [
          branch ~tag:"hit" ~note:"destination MAC known"
            (Hash_map.Recipe.get_hit ~key_len);
          branch ~tag:"miss" ~note:"destination MAC unknown (flood)"
            (Hash_map.Recipe.get_miss ~key_len);
        ];
    ]
end
