let kind = "nat_table"
let key_len = 5

type t = {
  ft : Flow_table.t;
  ext : int array;  (** port - port_lo → flow handle, or -1 *)
  ext_base : int;
  alloc : Port_alloc.t;
  port_lo : int;
  port_hi : int;
}

let create ~base ~capacity ~buckets ~timeout ?granularity ~alloc ~port_lo
    ~port_hi () =
  if port_hi < port_lo then invalid_arg "Nat_table.create: bad port range";
  let ext = Array.make (port_hi - port_lo + 1) (-1) in
  let ext_base = base + (12 * 1024 * 1024) in
  let cell = ref None in
  let on_expire meter ~value =
    match !cell with
    | None -> assert false
    | Some t ->
        (* value is the flow's external port: clear the reverse mapping
           and hand the port back to the allocator *)
        Costing.charge_store meter ~addr:(ext_base + (8 * (value - port_lo)))
          ();
        t.ext.(value - port_lo) <- -1;
        Port_alloc.free t.alloc meter value
  in
  let on_expire_fast s ~value =
    match !cell with
    | None -> assert false
    | Some t ->
        Costing.Sink.store s ~addr:(ext_base + (8 * (value - port_lo))) ();
        t.ext.(value - port_lo) <- -1;
        Port_alloc.fast_free t.alloc s value
  in
  let ft =
    Flow_table.create ~base ~key_len ~capacity ~buckets ~timeout ?granularity
      ~on_expire ~on_expire_fast ()
  in
  let t = { ft; ext; ext_base; alloc; port_lo; port_hi } in
  cell := Some t;
  t

let size t = Flow_table.size t.ft
let capacity t = Flow_table.capacity t.ft
let allocator t = t.alloc
let ext_addr t i = t.ext_base + (8 * i)
let expire t meter ~now = Flow_table.expire t.ft meter ~now

let lookup_int t meter key ~now =
  match Flow_table.get t.ft meter key ~now with
  | Some port -> port
  | None -> -1

let add_int t meter key ~now =
  let port = Port_alloc.alloc t.alloc meter in
  Costing.charge_branch meter 1;
  if port < 0 then -1
  else begin
    let handle = Flow_table.put t.ft meter key ~value:port ~now in
    Costing.charge_branch meter 1;
    if handle < 0 then begin
      (* table full: roll the allocation back *)
      Port_alloc.free t.alloc meter port;
      -1
    end
    else begin
      Costing.charge_store meter ~addr:(ext_addr t (port - t.port_lo)) ();
      Costing.charge_alu meter 1;
      t.ext.(port - t.port_lo) <- handle;
      port
    end
  end

let lookup_ext t meter ~port ~now =
  Costing.charge_alu meter 2;
  Costing.charge_branch meter 1;
  if port < t.port_lo || port > t.port_hi then -1
  else begin
    let i = port - t.port_lo in
    Costing.charge_load meter ~addr:(ext_addr t i) ();
    Costing.charge_branch meter 1;
    let handle = t.ext.(i) in
    if handle >= 0 then Flow_table.refresh_entry t.ft meter handle ~now;
    handle
  end

let int_field t meter ~handle ~field =
  if field < 0 || field >= key_len then invalid_arg "Nat_table.int_field";
  Costing.charge_load meter ~addr:(0x100 + (handle * 64) + (8 * field)) ();
  Costing.charge_alu meter 1;
  (Flow_table.key_at t.ft handle).(field)

let flow_key_quiet t handle = Flow_table.key_at t.ft handle
let hash_of_flow t key = Flow_table.hash_of_key t.ft key

(* ---- specialized fast paths ----------------------------------------

   Sink twins of the metered operations; see {!Hash_map} for the
   discipline.  Keys are read in place from the caller's argv. *)

module S = Costing.Sink

let fast_expire t s ~now = Flow_table.fast_expire t.ft s ~now

let fast_lookup_int t s (key : int array) ~off ~now =
  Flow_table.fast_get t.ft s key ~off ~now

let fast_add_int t s (key : int array) ~off ~now =
  let port = Port_alloc.fast_alloc t.alloc s in
  S.branch s 1;
  if port < 0 then -1
  else begin
    let handle = Flow_table.fast_put t.ft s key ~off ~value:port ~now in
    S.branch s 1;
    if handle < 0 then begin
      Port_alloc.fast_free t.alloc s port;
      -1
    end
    else begin
      S.store s ~addr:(ext_addr t (port - t.port_lo)) ();
      S.alu s 1;
      t.ext.(port - t.port_lo) <- handle;
      port
    end
  end

let fast_lookup_ext t s ~port ~now =
  S.alu s 2;
  S.branch s 1;
  if port < t.port_lo || port > t.port_hi then -1
  else begin
    let i = port - t.port_lo in
    S.load s ~addr:(ext_addr t i) ();
    S.branch s 1;
    let handle = t.ext.(i) in
    if handle >= 0 then Flow_table.fast_refresh_entry t.ft s handle ~now;
    handle
  end

let fast_int_field t s ~handle ~field =
  if field < 0 || field >= key_len then invalid_arg "Nat_table.int_field";
  S.load s ~addr:(0x100 + (handle * 64) + (8 * field)) ();
  S.alu s 1;
  Flow_table.key_word_at t.ft handle field

let to_ds t =
  let call meter meth (args : int array) =
    let key_of_args () = Array.sub args 0 key_len in
    match meth with
    | "expire" -> expire t meter ~now:args.(0)
    | "lookup_int" -> lookup_int t meter (key_of_args ()) ~now:args.(key_len)
    | "add_int" -> add_int t meter (key_of_args ()) ~now:args.(key_len)
    | "lookup_ext" -> lookup_ext t meter ~port:args.(0) ~now:args.(1)
    | "int_field" -> int_field t meter ~handle:args.(0) ~field:args.(1)
    | other -> invalid_arg ("nat_table: unknown method " ^ other)
  in
  let fast_path (s : Exec.Ds.sink) meth =
    match meth with
    | "expire" -> Some (fun (args : int array) -> fast_expire t s ~now:args.(0))
    | "lookup_int" ->
        Some (fun args -> fast_lookup_int t s args ~off:0 ~now:args.(key_len))
    | "add_int" ->
        Some (fun args -> fast_add_int t s args ~off:0 ~now:args.(key_len))
    | "lookup_ext" ->
        Some (fun args -> fast_lookup_ext t s ~port:args.(0) ~now:args.(1))
    | "int_field" ->
        Some (fun args -> fast_int_field t s ~handle:args.(0) ~field:args.(1))
    | _ -> None
  in
  Exec.Ds.make ~fast_path ~kind call

module Recipe = struct
  open Perf

  let alloc_recipes = function
    | "dll" -> (Port_alloc.Recipe.alloc_dll, Port_alloc.Recipe.free_dll)
    | "array" -> (Port_alloc.Recipe.alloc_array, Port_alloc.Recipe.free_array)
    | other -> invalid_arg ("Nat_table.Recipe: unknown allocator " ^ other)

  let const_vec ~ic ~ma ~lines =
    Cost_vec.make ~ic:(Perf_expr.const ic) ~ma:(Perf_expr.const ma)
      ~cycles:(Costing.cycles_upper ~ic:(Perf_expr.const ic)
                 ~ma:(Perf_expr.const lines))

  let contract ~alloc_name =
    let alloc_c, free_c = alloc_recipes alloc_name in
    let open Ds_contract in
    [
      make ~ds_kind:kind ~meth:"expire"
        [
          branch ~tag:"expire"
            ~note:"e flows past their timeout; each frees its port"
            (Flow_table.Recipe.expire ~key_len
               ~per_entry_extra:
                 (Cost_vec.add free_c (const_vec ~ic:1 ~ma:1 ~lines:1)));
        ];
      make ~ds_kind:kind ~meth:"lookup_int"
        [
          branch ~tag:"hit" ~note:"flow known (refreshes entry)"
            (Flow_table.Recipe.get_hit ~key_len);
          branch ~tag:"miss" ~note:"flow unknown"
            (Flow_table.Recipe.get_miss ~key_len);
        ];
      make ~ds_kind:kind ~meth:"add_int"
        [
          branch ~tag:"ok" ~note:"port allocated, flow installed"
            (Cost_vec.sum
               [
                 alloc_c;
                 Flow_table.Recipe.put_new ~key_len;
                 const_vec ~ic:4 ~ma:1 ~lines:1;
               ]);
          branch ~tag:"full" ~note:"flow table full (allocation rolled back)"
            (Cost_vec.sum
               [
                 alloc_c;
                 Flow_table.Recipe.put_full ~key_len;
                 free_c;
                 const_vec ~ic:2 ~ma:0 ~lines:0;
               ]);
          branch ~tag:"no_port" ~note:"port range exhausted"
            (Cost_vec.add alloc_c (const_vec ~ic:1 ~ma:0 ~lines:0));
        ];
      make ~ds_kind:kind ~meth:"lookup_ext"
        [
          branch ~tag:"hit" ~note:"port mapped (refreshes entry)"
            (Cost_vec.add
               (const_vec ~ic:5 ~ma:1 ~lines:1)
               (Cost_vec.add Flow_table.Recipe.refresh
                  (const_vec ~ic:2 ~ma:1 ~lines:1)));
          branch ~tag:"miss" ~note:"port unmapped"
            (* the miss path is branch-heavy (2 of its 4 instructions are
               worst-case mispredicts), so the uniform per-instruction
               cycle factor needs extra IC headroom to stay conservative *)
            (const_vec ~ic:7 ~ma:1 ~lines:1);
        ];
      make ~ds_kind:kind ~meth:"int_field"
        [ branch ~tag:"ok" (const_vec ~ic:2 ~ma:1 ~lines:1) ];
    ]
end
