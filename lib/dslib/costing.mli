(** Shared cost conventions for the data-structure library.

    Implementations charge the meter through these helpers, and the
    hand-written contracts use the [ic_*]/[ma_*] mirrors of the same
    recipes — so a contract coefficient and the code it covers can only
    drift if someone edits one side, which the contract-validation
    property tests catch. *)

val charge_alu : Exec.Meter.t -> int -> unit
val charge_branch : Exec.Meter.t -> int -> unit
val charge_move : Exec.Meter.t -> int -> unit
val charge_mul : Exec.Meter.t -> int -> unit

val charge_load :
  Exec.Meter.t -> ?dependent:bool -> addr:int -> unit -> unit
val charge_store : Exec.Meter.t -> addr:int -> unit -> unit

val charge_hash : Exec.Meter.t -> key_len:int -> unit
(** Multiplicative word-by-word hash of a register-resident key. *)

(** Sink-flavoured twins of the [charge_*] helpers, for the specialized
    fast paths ({!Exec.Ds.sink}): instruction charges bump the deferred
    per-kind counters, memory charges fire at the access point.  Each
    twin charges exactly what its metered counterpart does. *)
module Sink : sig
  val alu : Exec.Ds.sink -> int -> unit
  val branch : Exec.Ds.sink -> int -> unit
  val move : Exec.Ds.sink -> int -> unit
  val mul : Exec.Ds.sink -> int -> unit
  val load : Exec.Ds.sink -> ?dependent:bool -> addr:int -> unit -> unit
  val store : Exec.Ds.sink -> addr:int -> unit -> unit
  val hash : Exec.Ds.sink -> key_len:int -> unit
  val observe : Exec.Ds.sink -> Perf.Pcv.t -> int -> unit

  val batched : Exec.Ds.sink -> bool
  (** {!Exec.Ds.sink.s_mem_batched}: when [true] a fast path may charge
      [n] statically-counted accesses with one [loads_b]/[stores_b]
      bump pair instead of per-access [load]/[store] calls.  The
      per-access address (and [dependent] flag) is priced identically
      either way on such a model, so the totals cannot differ — only
      the number of charging calls does. *)

  val loads_b : Exec.Ds.sink -> int -> unit
  (** [n] batched loads: bumps the load counter and the deferred
      access batch by [n].  Only sound when {!batched} holds. *)

  val stores_b : Exec.Ds.sink -> int -> unit
  (** [n] batched stores; same contract as {!loads_b}. *)
end

val ic_hash : key_len:int -> int
val ma_hash : key_len:int -> int

val cycles_upper : ic:Perf.Perf_expr.t -> ma:Perf.Perf_expr.t ->
  Perf.Perf_expr.t
(** The conservative cycles expression used by all library contracts:
    every instruction at a blended worst-case latency, every memory access
    from DRAM — exactly the stance of the paper's hardware model
    (§3.5). *)

val cycles_instr_factor : int
