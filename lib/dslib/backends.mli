(** Value-level backend registry.

    Each abstraction the NFs consume lists its interchangeable
    implementations as first-class choice values and maps a choice to
    everything an [Nf.Spec] needs: the ds [kind] a program's state
    declaration names, the contract recipe the pipeline prices against,
    fast-path (specialization) eligibility, a constructor, and a memory
    footprint model derived from the same layout constants the charged
    address arithmetic uses — so an autotuner can compare backends
    analytically, without running them. *)

type lpm = [ `Dir24_8 | `Trie ]
type alloc = [ `Dll | `Array ]
type map = [ `Flow ]

(** Longest-prefix-match tables: DPDK's dir-24-8 (constant-time, 16 MiB
    first tier) vs the paper's Patricia trie (linear in matched prefix
    length, 64 B per node). *)
module Lpm : sig
  type choice = lpm

  val all : choice list
  val name : choice -> string
  val of_name : string -> choice
  (** Inverse of [name]; raises [Invalid_argument] on unknown names. *)

  val kind : choice -> string
  (** The ds kind an [Ir.Program] state declaration names. *)

  val contract : choice -> Perf.Ds_contract.t list
  val specializable : choice -> bool
  (** Whether the backend exposes sink fast paths (see
      {!Exec.Specialize}); both LPM tables currently do not. *)

  type repr = Dir24_8 of Lpm_dir24_8.t | Trie of Lpm_trie.t
  type instance = { choice : choice; ds : Exec.Ds.t; repr : repr }

  val create : choice -> base:int -> default_port:int -> instance
  val add_route : instance -> prefix:int -> len:int -> port:int -> unit
  val footprint_bytes : instance -> int
end

(** NAT port allocators (paper §5.3): doubly-linked free list vs scanned
    flag array. *)
module Alloc : sig
  type choice = alloc

  val all : choice list
  val name : choice -> string
  val of_name : string -> choice
  val create : choice -> base:int -> port_lo:int -> port_hi:int -> Port_alloc.t
  val footprint_bytes : choice -> ports:int -> int
end

(** Flow maps.  One production implementation today ([`Flow], the
    expiring {!Flow_table}); the footprint model is shared by every NF
    built on it. *)
module Flows : sig
  type choice = map

  val all : choice list
  val name : choice -> string
  val of_name : string -> choice
  val footprint_bytes : choice -> capacity:int -> buckets:int -> int
end

val nat_footprint_bytes :
  alloc:alloc -> capacity:int -> buckets:int -> ports:int -> int
(** Flow table + 8 B/port reverse map + the chosen allocator. *)
