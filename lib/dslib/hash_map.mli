(** Chained hash map with integer-array keys — the workhorse under the
    flow table and the MAC table.

    The map is backed by flat arrays (a node = one 64-byte line holding the
    key words, the value and the chain link), so the address stream seen by
    the cache models is the one a C implementation would produce.

    Every operation reports its two PCVs through the meter:
    [t] — bucket traversals (nodes visited), and
    [c] — hash collisions (visited nodes whose key did not match). *)

type t

val create :
  ?seed:int -> base:int -> key_len:int -> capacity:int -> buckets:int ->
  unit -> t
(** [key_len] ≤ 6 words.  [seed] keys the hash (collision-attack defence).
    Raises [Invalid_argument] on bad geometry. *)

val seed : t -> int
val buckets : t -> int

val reseed : t -> Exec.Meter.t -> seed:int -> unit
(** Re-key the hash and re-chain every entry — the bridge's rehash
    defence.  Cost: one store per bucket to clear the heads, then for each
    resident entry a key read, a hash and an insertion that walks its new
    chain checking for duplicates (this walk is the [t·o] term of the
    paper's Table 4 contract). *)

val capacity : t -> int
val size : t -> int
val key_len : t -> int

type probe = { result : int; collisions : int; traversals : int }
(** [result] is the node index, or [-1]. *)

val get : t -> Exec.Meter.t -> int array -> probe
(** Look the key up; on a hit, [result] is the node index.  Observes
    [c]/[t]. *)

val value_of : t -> Exec.Meter.t -> int -> int
(** [value_of t meter idx] reads the value stored at node [idx]. *)

val set_value : t -> Exec.Meter.t -> int -> int -> unit

val put : t -> Exec.Meter.t -> int array -> int -> probe
(** Insert or update.  [result] is the node index, or [-1] when the map is
    full.  Observes [c]/[t]. *)

val remove : t -> Exec.Meter.t -> int array -> probe
(** Remove the key, returning its former node index in [result] (or -1).
    Observes [c]/[t]. *)

val key_words : t -> int -> int array
(** Copy of the key stored at a node index (no charges — debug/test). *)

val key_word : t -> int -> int -> int
(** [key_word t i w] is word [w] of node [i]'s key, read in place (no
    charges, no copy). *)

(** {1 Specialized fast paths}

    Sink twins of the metered operations: observationally identical
    (state, result, PCV observations, charges) but allocation-free —
    keys are read in place from the caller's array at an offset, and
    instruction charges bump the sink's deferred counters.  Only sound
    under an untraced, non-coupled model; {!Exec.Specialize} guarantees
    that. *)

val fast_get : t -> Exec.Ds.sink -> int array -> off:int -> int
(** Node index or [-1]; the key is [key.(off) .. key.(off+key_len-1)]. *)

val fast_put : t -> Exec.Ds.sink -> int array -> off:int -> int -> int
val fast_remove_node : t -> Exec.Ds.sink -> int -> int
(** Remove the entry at a node index, reading its key in place. *)

val fast_value_of : t -> Exec.Ds.sink -> int -> int
val fast_set_value : t -> Exec.Ds.sink -> int -> int -> unit
val fast_reseed : t -> Exec.Ds.sink -> seed:int -> unit

val last_fast_traversals : t -> int
(** Traversal count of the most recent fast probe (uncharged). *)

val fold : (int -> acc:'a -> 'a) -> t -> 'a -> 'a
(** Fold over occupied node indices (no charges — used by rehash and
    tests). *)

val node_addr : t -> int -> int
val hash_of_key : t -> int array -> int
(** The bucket the key chains into (no charges — used by tests and
    adversarial workload synthesis). *)

(** {1 Contract recipes}

    Conservative per-method costs over the PCVs [c] and [t], mirroring the
    charging code above.  The flow-table and MAC-table contracts are built
    from these. *)

module Recipe : sig
  val get_hit : key_len:int -> Perf.Cost_vec.t
  val get_miss : key_len:int -> Perf.Cost_vec.t
  val put_update : key_len:int -> Perf.Cost_vec.t
  val put_new : key_len:int -> Perf.Cost_vec.t
  val put_full : key_len:int -> Perf.Cost_vec.t
  val remove_found : key_len:int -> Perf.Cost_vec.t
  val remove_miss : key_len:int -> Perf.Cost_vec.t

  val contract : key_len:int -> Perf.Ds_contract.t list
  (** The raw map's own method contracts (get/put/remove, one branch per
      outcome) — the model the stateful fuzzer checks a command
      sequence against.  The flow-table and MAC-table contracts remain
      the composed forms registered in the NF libraries. *)
end
