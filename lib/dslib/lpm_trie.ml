let kind = "lpm_trie"

type node = {
  mutable children : node option array;  (** index by bit value *)
  mutable port : int;
  addr : int;
}

type t = {
  root : node;
  base : int;
  default_port : int;
  mutable node_count : int;
}

let create ~base ~default_port =
  {
    root = { children = [| None; None |]; port = default_port; addr = base };
    base;
    default_port;
    node_count = 0;
  }

let bit_of ip i = (ip lsr (31 - i)) land 1

let add_route t ~prefix ~len ~port =
  if len < 0 || len > 32 then invalid_arg "Lpm_trie.add_route: bad length";
  let rec insert node i =
    if i = len then node.port <- port
    else
      let b = bit_of prefix i in
      let child =
        match node.children.(b) with
        | Some c -> c
        | None ->
            t.node_count <- t.node_count + 1;
            let c =
              {
                children = [| None; None |];
                port = node.port;
                addr = t.base + (64 * t.node_count);
              }
            in
            node.children.(b) <- Some c;
            c
      in
      insert child (i + 1)
  in
  insert t.root 0

(* Charging matches paper Table 2 exactly:
   per matched bit — child-pointer load (1 instr, 1 access) + 2 ALU +
   1 branch = 4 instr, 1 access; fixed — root move (1 instr) + port read
   (1 instr, 1 access) = 2 instr, 1 access. *)
let lookup t meter ip =
  Costing.charge_move meter 1;
  let rec walk node i =
    if i >= 32 then (node, i)
    else
      let b = bit_of ip i in
      match node.children.(b) with
      | Some child ->
          Costing.charge_alu meter 2;
          Costing.charge_load meter ~dependent:true
            ~addr:(node.addr + (8 * b))
            ();
          Costing.charge_branch meter 1;
          walk child (i + 1)
      | None -> (node, i)
  in
  let node, depth = walk t.root 0 in
  Costing.charge_load meter ~dependent:true ~addr:(node.addr + 16) ();
  Exec.Meter.observe meter Perf.Pcv.prefix_len depth;
  node.port

let lookup_quiet t ip = lookup t (Exec.Meter.create (Hw.Model.null ())) ip

(* One 64-byte line per node, root included (node addresses are
   [base + 64*i]). *)
let footprint_bytes t = 64 * (t.node_count + 1)

let matched_len t ip =
  let rec walk node i =
    if i >= 32 then i
    else
      match node.children.(bit_of ip i) with
      | Some child -> walk child (i + 1)
      | None -> i
  in
  walk t.root 0

let to_ds t =
  let call meter meth (args : int array) =
    match meth with
    | "lookup" -> lookup t meter args.(0)
    | other -> invalid_arg ("lpm_trie: unknown method " ^ other)
  in
  Exec.Ds.make ~kind call

module Recipe = struct
  open Perf

  let l = Pcv.prefix_len

  let lookup_cost =
    let ic = Perf_expr.add_const 2 (Perf_expr.term 4 [ l ]) in
    let ma = Perf_expr.add_const 1 (Perf_expr.pcv l) in
    Cost_vec.make ~ic ~ma ~cycles:(Costing.cycles_upper ~ic ~ma)

  let contract =
    let open Ds_contract in
    [
      make ~ds_kind:kind ~meth:"lookup"
        [ branch ~tag:"ok" ~note:"walks l matched bits" lookup_cost ];
    ]
end
