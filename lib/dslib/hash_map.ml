(* Node layout: node [i] is one 64-byte line at [entries_base + 64*i],
   holding the key words, the value and the chain link.  Buckets are an
   array of 8-byte heads at [base]. *)

type t = {
  key_len : int;
  capacity : int;
  buckets : int;
  bmask : int;
      (** [buckets - 1] when [buckets] is a power of two (the bucket
          reduction is then a mask, same result as [mod]), else 0 *)
  bucket_base : int;
  entries_base : int;
  keys : int array;  (** capacity * key_len, flattened *)
  values : int array;
  next : int array;  (** chain link, or -1 *)
  head : int array;  (** bucket heads, node index or -1 *)
  occupied : bool array;
  mutable free : int;  (** free-list head through [next] *)
  mutable size : int;
  mutable seed : int;
  (* probe counters of the last fast walk, kept here so the fast entry
     points can return a bare int (no probe record allocation) *)
  mutable fw_pred : int;
  mutable fw_collisions : int;
  mutable fw_traversals : int;
}

let node_size = 64

let create ?(seed = 17) ~base ~key_len ~capacity ~buckets () =
  if key_len < 1 || key_len > 6 then
    invalid_arg "Hash_map.create: key_len must be in 1..6";
  if capacity < 1 || buckets < 1 then
    invalid_arg "Hash_map.create: bad geometry";
  let next = Array.init capacity (fun i -> i + 1) in
  next.(capacity - 1) <- -1;
  {
    key_len;
    capacity;
    buckets;
    bmask = (if buckets land (buckets - 1) = 0 then buckets - 1 else 0);
    bucket_base = base;
    entries_base = base + (8 * buckets);
    keys = Array.make (capacity * key_len) 0;
    values = Array.make capacity 0;
    next;
    head = Array.make buckets (-1);
    occupied = Array.make capacity false;
    free = 0;
    size = 0;
    seed;
    fw_pred = -1;
    fw_collisions = 0;
    fw_traversals = 0;
  }

let capacity t = t.capacity
let size t = t.size
let key_len t = t.key_len
let node_addr t i = t.entries_base + (node_size * i)
let bucket_addr t b = t.bucket_base + (8 * b)

let seed t = t.seed
let buckets t = t.buckets

let hash_of_key t key =
  let h =
    Array.fold_left
      (fun acc w -> ((acc * 0x9e3779b1) + w) land max_int)
      (t.seed * 0x85ebca77 land max_int)
      key
  in
  h mod t.buckets

type probe = { result : int; collisions : int; traversals : int }

let observe t meter ~collisions ~traversals =
  ignore t;
  Exec.Meter.observe meter Perf.Pcv.collisions collisions;
  Exec.Meter.observe meter Perf.Pcv.traversals traversals

(* Charge the shared probe prologue: entry setup, hash, bucket head. *)
let charge_prologue t meter b =
  Costing.charge_alu meter 2;
  Costing.charge_hash meter ~key_len:t.key_len;
  Costing.charge_alu meter 1;
  Costing.charge_load meter ~addr:(bucket_addr t b) ()

let charge_epilogue meter =
  Costing.charge_alu meter 1;
  Costing.charge_branch meter 1

(* Branchless fixed-length key compare (as a C memcmp over a fixed-size
   struct compiles to): every word is loaded and xor-accumulated, one
   branch at the end. *)
let compare_key t meter key i =
  let addr = node_addr t i in
  let diff = ref 0 in
  for w = 0 to t.key_len - 1 do
    Costing.charge_load meter ~addr:(addr + (8 * w)) ();
    Costing.charge_alu meter 1;
    diff := !diff lor (t.keys.((i * t.key_len) + w) lxor key.(w))
  done;
  Costing.charge_branch meter 1;
  !diff = 0

let charge_visit t meter i =
  Costing.charge_load meter ~dependent:true ~addr:(node_addr t i) ();
  Costing.charge_alu meter 1;
  Costing.charge_branch meter 1

(* Walk the chain of bucket [b] looking for [key].  Returns the node, its
   predecessor, and the probe counters. *)
let walk t meter key b =
  let rec loop i pred collisions traversals =
    if i < 0 then (-1, pred, collisions, traversals)
    else begin
      charge_visit t meter i;
      if compare_key t meter key i then (i, pred, collisions, traversals + 1)
      else loop t.next.(i) i (collisions + 1) (traversals + 1)
    end
  in
  loop t.head.(b) (-1) 0 0

let check_key t key =
  if Array.length key <> t.key_len then
    invalid_arg "Hash_map: key length mismatch"

let get t meter key =
  check_key t key;
  let b = hash_of_key t key in
  charge_prologue t meter b;
  let node, _pred, collisions, traversals = walk t meter key b in
  charge_epilogue meter;
  observe t meter ~collisions ~traversals;
  { result = (if node >= 0 then node else -1); collisions; traversals }

let value_of t meter i =
  Costing.charge_load meter ~addr:(node_addr t i + 56) ();
  t.values.(i)

let set_value t meter i v =
  Costing.charge_store meter ~addr:(node_addr t i + 56) ();
  t.values.(i) <- v

let put t meter key value =
  check_key t key;
  let b = hash_of_key t key in
  charge_prologue t meter b;
  let node, _pred, collisions, traversals = walk t meter key b in
  let result =
    if node >= 0 then begin
      (* update in place *)
      Costing.charge_store meter ~addr:(node_addr t node + 56) ();
      Costing.charge_alu meter 1;
      t.values.(node) <- value;
      node
    end
    else begin
      Costing.charge_branch meter 1;
      Costing.charge_alu meter 1;
      if t.free < 0 then -1
      else begin
        let i = t.free in
        Costing.charge_load meter ~addr:(node_addr t i) ();
        t.free <- t.next.(i);
        Costing.charge_move meter 2;
        let addr = node_addr t i in
        for w = 0 to t.key_len - 1 do
          Costing.charge_store meter ~addr:(addr + (8 * w)) ();
          t.keys.((i * t.key_len) + w) <- key.(w)
        done;
        Costing.charge_store meter ~addr:(addr + 56) ();
        t.values.(i) <- value;
        Costing.charge_store meter ~addr:(addr + 48) ();
        t.next.(i) <- t.head.(b);
        Costing.charge_store meter ~addr:(bucket_addr t b) ();
        t.head.(b) <- i;
        t.occupied.(i) <- true;
        Costing.charge_alu meter 1;
        t.size <- t.size + 1;
        i
      end
    end
  in
  charge_epilogue meter;
  observe t meter ~collisions ~traversals;
  { result; collisions; traversals }

let remove t meter key =
  check_key t key;
  let b = hash_of_key t key in
  charge_prologue t meter b;
  (* pred tracking costs one extra move per visited node *)
  let rec loop i pred collisions traversals =
    if i < 0 then (-1, pred, collisions, traversals)
    else begin
      charge_visit t meter i;
      Costing.charge_move meter 1;
      if compare_key t meter key i then (i, pred, collisions, traversals + 1)
      else loop t.next.(i) i (collisions + 1) (traversals + 1)
    end
  in
  let node, pred, collisions, traversals = loop t.head.(b) (-1) 0 0 in
  if node >= 0 then begin
    (if pred < 0 then begin
       Costing.charge_store meter ~addr:(bucket_addr t b) ();
       t.head.(b) <- t.next.(node)
     end
     else begin
       Costing.charge_store meter ~addr:(node_addr t pred + 48) ();
       t.next.(pred) <- t.next.(node)
     end);
    Costing.charge_store meter ~addr:(node_addr t node + 48) ();
    Costing.charge_move meter 1;
    t.next.(node) <- t.free;
    t.free <- node;
    t.occupied.(node) <- false;
    Costing.charge_alu meter 1;
    t.size <- t.size - 1
  end;
  charge_epilogue meter;
  observe t meter ~collisions ~traversals;
  { result = node; collisions; traversals }

let key_words t i = Array.sub t.keys (i * t.key_len) t.key_len
let key_word t i w = t.keys.((i * t.key_len) + w)

(* ---- specialized fast paths ----------------------------------------

   Sink twins of get/put/remove/reseed: same state mutations, same PCV
   observations and charge-for-charge the same costs as the metered
   versions above, but keys are read in place from the caller's array
   (argv or [t.keys] itself — no copies) and instruction charges bump
   the sink's deferred counters.  Kept adjacent to their twins; any edit
   to a metered operation must be mirrored here (the differential oracle
   and the golden parity tests catch drift). *)

module S = Costing.Sink

let last_fast_traversals t = t.fw_traversals

let fast_hash t (a : int array) off =
  let h = ref (t.seed * 0x85ebca77 land max_int) in
  for w = 0 to t.key_len - 1 do
    h := ((!h * 0x9e3779b1) + Array.unsafe_get a (off + w)) land max_int
  done;
  if t.bmask > 0 then !h land t.bmask else !h mod t.buckets

let fast_prologue t s b =
  if S.batched s then begin
    (* same charges as the metered arm, folded: alu 2 + hash
       (mul k, alu 2k+1) + alu 1 + the bucket-head load *)
    S.mul s t.key_len;
    S.alu s ((2 * t.key_len) + 4);
    S.loads_b s 1
  end
  else begin
    S.alu s 2;
    S.hash s ~key_len:t.key_len;
    S.alu s 1;
    S.load s ~addr:(bucket_addr t b) ()
  end

let fast_epilogue s =
  S.alu s 1;
  S.branch s 1

let fast_compare t s (key : int array) off i =
  let addr = node_addr t i in
  let diff = ref 0 in
  for w = 0 to t.key_len - 1 do
    S.load s ~addr:(addr + (8 * w)) ();
    S.alu s 1;
    diff := !diff lor (t.keys.((i * t.key_len) + w) lxor key.(off + w))
  done;
  S.branch s 1;
  !diff = 0

let fast_visit t s i =
  S.load s ~dependent:true ~addr:(node_addr t i) ();
  S.alu s 1;
  S.branch s 1

(* Key equality without charges, for the batched walk (whose per-node
   charges are bulk-counted up front).  The metered compare reads every
   word unconditionally, so the batched counts do too; only the data
   comparison may exit early. *)
let rec key_eq_from t (key : int array) off i w =
  w >= t.key_len
  || Array.unsafe_get t.keys ((i * t.key_len) + w)
     = Array.unsafe_get key (off + w)
     && key_eq_from t key off i (w + 1)

(* Top-level recursion, not a local closure: the walk runs on the
   zero-allocation path, and a local [let rec] capturing its context
   would allocate a closure block per probe. *)
let rec fast_walk_from t s key off ~pred_move i pred collisions traversals =
  if i < 0 then begin
    t.fw_pred <- pred;
    t.fw_collisions <- collisions;
    t.fw_traversals <- traversals;
    -1
  end
  else begin
    fast_visit t s i;
    if pred_move then S.move s 1;
    if fast_compare t s key off i then begin
      t.fw_pred <- pred;
      t.fw_collisions <- collisions;
      t.fw_traversals <- traversals + 1;
      i
    end
    else
      fast_walk_from t s key off ~pred_move t.next.(i) i (collisions + 1)
        (traversals + 1)
  end

(* Batched twin of [fast_walk_from]: per node, [fast_visit] (one
   dependent load, alu, branch) plus [fast_compare] (key_len loads and
   alus, branch) fold into three bulk bumps. *)
let rec fast_walk_from_b t s key off ~pred_move i pred collisions traversals =
  if i < 0 then begin
    t.fw_pred <- pred;
    t.fw_collisions <- collisions;
    t.fw_traversals <- traversals;
    -1
  end
  else begin
    S.loads_b s (1 + t.key_len);
    S.alu s (1 + t.key_len);
    S.branch s 2;
    if pred_move then S.move s 1;
    if key_eq_from t key off i 0 then begin
      t.fw_pred <- pred;
      t.fw_collisions <- collisions;
      t.fw_traversals <- traversals + 1;
      i
    end
    else
      fast_walk_from_b t s key off ~pred_move t.next.(i) i (collisions + 1)
        (traversals + 1)
  end

let fast_walk t s key off b ~pred_move =
  if S.batched s then fast_walk_from_b t s key off ~pred_move t.head.(b) (-1) 0 0
  else fast_walk_from t s key off ~pred_move t.head.(b) (-1) 0 0

let fast_observe t s =
  S.observe s Perf.Pcv.collisions t.fw_collisions;
  S.observe s Perf.Pcv.traversals t.fw_traversals

let fast_get t s (key : int array) ~off =
  let b = fast_hash t key off in
  fast_prologue t s b;
  let node = fast_walk t s key off b ~pred_move:false in
  fast_epilogue s;
  fast_observe t s;
  node

let fast_value_of t s i =
  S.load s ~addr:(node_addr t i + 56) ();
  t.values.(i)

let fast_set_value t s i v =
  S.store s ~addr:(node_addr t i + 56) ();
  t.values.(i) <- v

let fast_put t s (key : int array) ~off value =
  let b = fast_hash t key off in
  fast_prologue t s b;
  let node = fast_walk t s key off b ~pred_move:false in
  let result =
    if node >= 0 then begin
      S.store s ~addr:(node_addr t node + 56) ();
      S.alu s 1;
      t.values.(node) <- value;
      node
    end
    else begin
      S.branch s 1;
      S.alu s 1;
      if t.free < 0 then -1
      else begin
        let i = t.free in
        S.load s ~addr:(node_addr t i) ();
        t.free <- t.next.(i);
        S.move s 2;
        let addr = node_addr t i in
        for w = 0 to t.key_len - 1 do
          S.store s ~addr:(addr + (8 * w)) ();
          t.keys.((i * t.key_len) + w) <- key.(off + w)
        done;
        S.store s ~addr:(addr + 56) ();
        t.values.(i) <- value;
        S.store s ~addr:(addr + 48) ();
        t.next.(i) <- t.head.(b);
        S.store s ~addr:(bucket_addr t b) ();
        t.head.(b) <- i;
        t.occupied.(i) <- true;
        S.alu s 1;
        t.size <- t.size + 1;
        i
      end
    end
  in
  fast_epilogue s;
  fast_observe t s;
  result

(* Remove the entry at node [n], reading its key in place from [t.keys]
   (what the flow table's expiry does, sans the [Array.sub]). *)
let fast_remove_node t s n =
  let off = n * t.key_len in
  let b = fast_hash t t.keys off in
  fast_prologue t s b;
  let node = fast_walk t s t.keys off b ~pred_move:true in
  let pred = t.fw_pred in
  if node >= 0 then begin
    (if pred < 0 then begin
       S.store s ~addr:(bucket_addr t b) ();
       t.head.(b) <- t.next.(node)
     end
     else begin
       S.store s ~addr:(node_addr t pred + 48) ();
       t.next.(pred) <- t.next.(node)
     end);
    S.store s ~addr:(node_addr t node + 48) ();
    S.move s 1;
    t.next.(node) <- t.free;
    t.free <- node;
    t.occupied.(node) <- false;
    S.alu s 1;
    t.size <- t.size - 1
  end;
  fast_epilogue s;
  fast_observe t s;
  node

let rec fast_chain_visit t s j =
  if j >= 0 then begin
    fast_visit t s j;
    fast_chain_visit t s t.next.(j)
  end

let fast_reseed t s ~seed =
  t.seed <- seed;
  for b = 0 to t.buckets - 1 do
    S.store s ~addr:(bucket_addr t b) ();
    t.head.(b) <- -1
  done;
  for i = 0 to t.capacity - 1 do
    S.branch s 1;
    if t.occupied.(i) then begin
      for w = 0 to t.key_len - 1 do
        S.load s ~addr:(node_addr t i + (8 * w)) ()
      done;
      S.hash s ~key_len:t.key_len;
      let b = fast_hash t t.keys (i * t.key_len) in
      S.load s ~addr:(bucket_addr t b) ();
      fast_chain_visit t s t.head.(b);
      S.store s ~addr:(node_addr t i + 48) ();
      t.next.(i) <- t.head.(b);
      S.store s ~addr:(bucket_addr t b) ();
      t.head.(b) <- i
    end
  done

let reseed t meter ~seed =
  t.seed <- seed;
  (* clear every bucket head *)
  for b = 0 to t.buckets - 1 do
    Costing.charge_store meter ~addr:(bucket_addr t b) ();
    t.head.(b) <- -1
  done;
  (* re-chain each resident entry; the duplicate-check walk over the new
     chain is what makes rehashing cost grow with both occupancy and
     chain length *)
  for i = 0 to t.capacity - 1 do
    Costing.charge_branch meter 1;
    if t.occupied.(i) then begin
      let key = key_words t i in
      for w = 0 to t.key_len - 1 do
        Costing.charge_load meter ~addr:(node_addr t i + (8 * w)) ()
      done;
      Costing.charge_hash meter ~key_len:t.key_len;
      let b = hash_of_key t key in
      Costing.charge_load meter ~addr:(bucket_addr t b) ();
      let rec walk j =
        if j >= 0 then begin
          charge_visit t meter j;
          walk t.next.(j)
        end
      in
      walk t.head.(b);
      Costing.charge_store meter ~addr:(node_addr t i + 48) ();
      t.next.(i) <- t.head.(b);
      Costing.charge_store meter ~addr:(bucket_addr t b) ();
      t.head.(b) <- i
    end
  done

let fold f t init =
  let acc = ref init in
  for i = 0 to t.capacity - 1 do
    if t.occupied.(i) then acc := f i ~acc:!acc
  done;
  !acc

module Recipe = struct
  open Perf

  let c = Pcv.collisions
  let t_ = Pcv.traversals

  (* IC/MA of the probe shared by get/put/remove:
     prologue (3k+5 instr, 1 access) + per visit (3 instr, 1 access)
     + per compare (2k+1 instr, k accesses) + epilogue (2 instr). *)
  let probe ~key_len ~per_visit_extra =
    let k = key_len in
    let ic =
      Perf_expr.sum
        [
          Perf_expr.const ((3 * k) + 7);
          Perf_expr.term (3 + per_visit_extra) [ t_ ];
          Perf_expr.term ((2 * k) + 1) [ c ];
        ]
    in
    let ma =
      Perf_expr.sum
        [ Perf_expr.const 1; Perf_expr.pcv t_; Perf_expr.term k [ c ] ]
    in
    (ic, ma)

  (* Distinct cache lines touched: the bucket head plus one line per
     visited node, plus [extra] lines for the op's own writes. *)
  let lines ~extra =
    Perf_expr.add_const (1 + extra) (Perf_expr.pcv t_)

  let vec ~ic ~ma ~extra_lines =
    Cost_vec.make ~ic ~ma
      ~cycles:(Costing.cycles_upper ~ic ~ma:(lines ~extra:extra_lines))

  let get_hit ~key_len =
    (* successful compare + the caller's value read *)
    let k = key_len in
    let ic, ma = probe ~key_len ~per_visit_extra:0 in
    vec
      ~ic:(Perf_expr.add_const ((2 * k) + 1 + 1) ic)
      ~ma:(Perf_expr.add_const (k + 1) ma)
      ~extra_lines:0

  let get_miss ~key_len =
    let ic, ma = probe ~key_len ~per_visit_extra:0 in
    vec ~ic ~ma ~extra_lines:0

  let put_update ~key_len =
    let k = key_len in
    let ic, ma = probe ~key_len ~per_visit_extra:0 in
    vec
      ~ic:(Perf_expr.add_const ((2 * k) + 1 + 2) ic)
      ~ma:(Perf_expr.add_const (k + 1) ma)
      ~extra_lines:0

  let put_new ~key_len =
    let k = key_len in
    let ic, ma = probe ~key_len ~per_visit_extra:0 in
    vec
      ~ic:(Perf_expr.add_const (2 + 1 + 2 + (k + 2) + 1 + 1) ic)
      ~ma:(Perf_expr.add_const (1 + (k + 2) + 1) ma)
      ~extra_lines:2

  let put_full ~key_len =
    let ic, ma = probe ~key_len ~per_visit_extra:0 in
    vec ~ic:(Perf_expr.add_const 2 ic) ~ma ~extra_lines:0

  let remove_found ~key_len =
    let k = key_len in
    let ic, ma = probe ~key_len ~per_visit_extra:1 in
    vec
      ~ic:(Perf_expr.add_const ((2 * k) + 1 + 4) ic)
      ~ma:(Perf_expr.add_const (k + 2) ma)
      ~extra_lines:2

  let remove_miss ~key_len =
    (* the pred-tracking walk runs to the end of the chain and finds
       nothing: the probe with its extra move per visit, no unlink *)
    let ic, ma = probe ~key_len ~per_visit_extra:1 in
    vec ~ic ~ma ~extra_lines:0

  let contract ~key_len =
    let open Ds_contract in
    [
      make ~ds_kind:"hash_map" ~meth:"get"
        [
          branch ~tag:"hit" ~note:"key present (value read included)"
            (get_hit ~key_len);
          branch ~tag:"miss" ~note:"key absent" (get_miss ~key_len);
        ];
      make ~ds_kind:"hash_map" ~meth:"put"
        [
          branch ~tag:"new" ~note:"fresh insert" (put_new ~key_len);
          branch ~tag:"update" ~note:"key present, value overwritten"
            (put_update ~key_len);
          branch ~tag:"full" ~note:"map full, not inserted"
            (put_full ~key_len);
        ];
      make ~ds_kind:"hash_map" ~meth:"remove"
        [
          branch ~tag:"found" ~note:"key present, unlinked"
            (remove_found ~key_len);
          branch ~tag:"absent" ~note:"key absent" (remove_miss ~key_len);
        ];
    ]
end
