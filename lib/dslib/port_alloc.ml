type impl =
  | Dll of {
      prev : int array;
      next : int array;
      taken : bool array;
      mutable head : int;  (** free-list head index, -1 when exhausted *)
    }
  | Arr of { busy : bool array }
      (** lowest-free policy: allocation scans from port 0 upward *)

type t = {
  impl : impl;
  base : int;
  port_lo : int;
  mutable allocated : int;
  cap : int;
}

let check_range ~port_lo ~port_hi =
  if port_lo < 0 || port_hi < port_lo then
    invalid_arg "Port_alloc: bad port range";
  port_hi - port_lo + 1

let dll ~base ~port_lo ~port_hi =
  let cap = check_range ~port_lo ~port_hi in
  let prev = Array.init cap (fun i -> i - 1) in
  let next = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1) in
  {
    impl = Dll { prev; next; taken = Array.make cap false; head = 0 };
    base;
    port_lo;
    allocated = 0;
    cap;
  }

let array ~base ~port_lo ~port_hi =
  let cap = check_range ~port_lo ~port_hi in
  { impl = Arr { busy = Array.make cap false }; base; port_lo;
    allocated = 0; cap }

let name t = match t.impl with Dll _ -> "dll" | Arr _ -> "array"
let allocated t = t.allocated
let capacity t = t.cap

let is_allocated t port =
  let i = port - t.port_lo in
  if i < 0 || i >= t.cap then false
  else
    match t.impl with Dll d -> d.taken.(i) | Arr a -> a.busy.(i)

let node_addr t i = t.base + (16 * i)
let word_addr t w = t.base + (8 * w)

let alloc t meter =
  match t.impl with
  | Dll d ->
      Costing.charge_load meter ~dependent:true ~addr:(t.base - 16) ();
      Costing.charge_branch meter 1;
      if d.head < 0 then -1
      else begin
        let i = d.head in
        Costing.charge_load meter ~dependent:true ~addr:(node_addr t i) ();
        let nxt = d.next.(i) in
        Costing.charge_store meter ~addr:(t.base - 16) ();
        d.head <- nxt;
        if nxt >= 0 then begin
          Costing.charge_store meter ~addr:(node_addr t nxt) ();
          d.prev.(nxt) <- -1
        end;
        Costing.charge_move meter 2;
        Costing.charge_alu meter 1;
        d.taken.(i) <- true;
        t.allocated <- t.allocated + 1;
        i + t.port_lo
      end
  | Arr a ->
      Costing.charge_alu meter 2;
      Costing.charge_branch meter 1;
      if t.allocated >= t.cap then begin
        Exec.Meter.observe meter Perf.Pcv.scan 0;
        -1
      end
      else begin
        (* lowest-free policy over a bitmap: skip full 64-slot words from
           the bottom (one load + compare each), then find-first-zero
           inside the first word with room.  The scan length [s] is the
           number of full words skipped — it tracks occupancy when the
           low ports are densely allocated. *)
        let words = (t.cap + 63) / 64 in
        let word_full w =
          let hi = min t.cap ((w + 1) * 64) - 1 in
          let rec full i = i > hi || (a.busy.(i) && full (i + 1)) in
          full (w * 64)
        in
        let rec skip w scanned =
          Costing.charge_load meter ~addr:(word_addr t w) ();
          Costing.charge_alu meter 1;
          Costing.charge_branch meter 1;
          if w < words - 1 && word_full w then skip (w + 1) (scanned + 1)
          else (w, scanned)
        in
        let w, scanned = skip 0 0 in
        let rec first_free i = if a.busy.(i) then first_free (i + 1) else i in
        let i = first_free (w * 64) in
        Costing.charge_alu meter 4 (* find-first-zero bit tricks *);
        Costing.charge_store meter ~addr:(word_addr t w) ();
        Costing.charge_alu meter 1;
        a.busy.(i) <- true;
        t.allocated <- t.allocated + 1;
        Exec.Meter.observe meter Perf.Pcv.scan scanned;
        i + t.port_lo
      end

let free t meter port =
  let i = port - t.port_lo in
  if i < 0 || i >= t.cap || not (is_allocated t port) then
    invalid_arg (Printf.sprintf "Port_alloc.free: port %d not allocated" port);
  match t.impl with
  | Dll d ->
      (* push back at the head of the free list *)
      Costing.charge_load meter ~dependent:true ~addr:(t.base - 16) ();
      Costing.charge_store meter ~addr:(node_addr t i) ();
      Costing.charge_store meter ~addr:(node_addr t i + 8) ();
      d.prev.(i) <- -1;
      d.next.(i) <- d.head;
      if d.head >= 0 then begin
        Costing.charge_store meter ~addr:(node_addr t d.head) ();
        d.prev.(d.head) <- i
      end;
      Costing.charge_store meter ~addr:(t.base - 16) ();
      d.head <- i;
      Costing.charge_move meter 1;
      Costing.charge_alu meter 1;
      d.taken.(i) <- false;
      t.allocated <- t.allocated - 1
  | Arr a ->
      Costing.charge_load meter ~addr:(word_addr t (i / 64)) ();
      Costing.charge_store meter ~addr:(word_addr t (i / 64)) ();
      Costing.charge_alu meter 2;
      a.busy.(i) <- false;
      t.allocated <- t.allocated - 1

(* ---- specialized fast paths ----------------------------------------

   Sink twins of alloc/free; see {!Hash_map} for the discipline. *)

module S = Costing.Sink

(* Top-level recursions (see {!Hash_map.fast_walk_from}): a local
   [let rec] would allocate its closure on the zero-allocation path.
   [skip]'s word index and scan count increment in lockstep from 0, so
   the fast twin returns the single index instead of the pair. *)
let rec arr_range_full (busy : bool array) hi i =
  i > hi || (busy.(i) && arr_range_full busy hi (i + 1))

let arr_word_full t (busy : bool array) w =
  let hi = min t.cap ((w + 1) * 64) - 1 in
  arr_range_full busy hi (w * 64)

let rec fast_arr_skip t s (busy : bool array) words w =
  S.load s ~addr:(word_addr t w) ();
  S.alu s 1;
  S.branch s 1;
  if w < words - 1 && arr_word_full t busy w then
    fast_arr_skip t s busy words (w + 1)
  else w

let rec arr_first_free (busy : bool array) i =
  if busy.(i) then arr_first_free busy (i + 1) else i

let fast_alloc t s =
  match t.impl with
  | Dll d ->
      S.load s ~dependent:true ~addr:(t.base - 16) ();
      S.branch s 1;
      if d.head < 0 then -1
      else begin
        let i = d.head in
        S.load s ~dependent:true ~addr:(node_addr t i) ();
        let nxt = d.next.(i) in
        S.store s ~addr:(t.base - 16) ();
        d.head <- nxt;
        if nxt >= 0 then begin
          S.store s ~addr:(node_addr t nxt) ();
          d.prev.(nxt) <- -1
        end;
        S.move s 2;
        S.alu s 1;
        d.taken.(i) <- true;
        t.allocated <- t.allocated + 1;
        i + t.port_lo
      end
  | Arr a ->
      S.alu s 2;
      S.branch s 1;
      if t.allocated >= t.cap then begin
        S.observe s Perf.Pcv.scan 0;
        -1
      end
      else begin
        let words = (t.cap + 63) / 64 in
        let w = fast_arr_skip t s a.busy words 0 in
        let scanned = w in
        let i = arr_first_free a.busy (w * 64) in
        S.alu s 4;
        S.store s ~addr:(word_addr t w) ();
        S.alu s 1;
        a.busy.(i) <- true;
        t.allocated <- t.allocated + 1;
        S.observe s Perf.Pcv.scan scanned;
        i + t.port_lo
      end

let fast_free t s port =
  let i = port - t.port_lo in
  if i < 0 || i >= t.cap || not (is_allocated t port) then
    invalid_arg (Printf.sprintf "Port_alloc.free: port %d not allocated" port);
  match t.impl with
  | Dll d ->
      S.load s ~dependent:true ~addr:(t.base - 16) ();
      S.store s ~addr:(node_addr t i) ();
      S.store s ~addr:(node_addr t i + 8) ();
      d.prev.(i) <- -1;
      d.next.(i) <- d.head;
      if d.head >= 0 then begin
        S.store s ~addr:(node_addr t d.head) ();
        d.prev.(d.head) <- i
      end;
      S.store s ~addr:(t.base - 16) ();
      d.head <- i;
      S.move s 1;
      S.alu s 1;
      d.taken.(i) <- false;
      t.allocated <- t.allocated - 1
  | Arr a ->
      S.load s ~addr:(word_addr t (i / 64)) ();
      S.store s ~addr:(word_addr t (i / 64)) ();
      S.alu s 2;
      a.busy.(i) <- false;
      t.allocated <- t.allocated - 1

module Recipe = struct
  open Perf

  let vec ~ic_const ~ma_const ~lines =
    Cost_vec.make ~ic:(Perf_expr.const ic_const)
      ~ma:(Perf_expr.const ma_const)
      ~cycles:(Costing.cycles_upper ~ic:(Perf_expr.const ic_const)
                 ~ma:(Perf_expr.const lines))

  (* A: a handful of dependent pointer touches, occupancy-independent. *)
  let alloc_dll = vec ~ic_const:9 ~ma_const:4 ~lines:4
  let free_dll = vec ~ic_const:8 ~ma_const:5 ~lines:4

  (* B: 3 instructions and one bitmap word per skipped full word, plus a
     constant find-first-zero tail.  Words pack 8 to a cache line. *)
  let alloc_array =
    let s = Perf_expr.pcv Pcv.scan in
    let ic = Perf_expr.add_const 12 (Perf_expr.scale 3 s) in
    let ma = Perf_expr.add_const 2 (Perf_expr.scale 1 s) in
    Cost_vec.make ~ic ~ma
      ~cycles:
        (Perf_expr.add
           (Costing.cycles_upper ~ic:(Perf_expr.const 12)
              ~ma:(Perf_expr.const 2))
           (Perf_expr.scale
              ((3 * Costing.cycles_instr_factor)
              + (Hw.Cost.dram_cycles / 8))
              s))

  let free_array = vec ~ic_const:4 ~ma_const:2 ~lines:1

  let alloc_cost t =
    match t.impl with Dll _ -> alloc_dll | Arr _ -> alloc_array

  let free_cost t =
    match t.impl with Dll _ -> free_dll | Arr _ -> free_array
end
