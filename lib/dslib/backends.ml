(* The value-level backend registry: each abstraction the NFs consume
   (LPM table, flow map, port allocator) lists its interchangeable
   implementations as first-class choices, and maps a choice to the
   ingredients an `Nf.Spec` needs — ds kind, contract recipe, fast-path
   eligibility, creation, and a memory-footprint model derived from the
   same layout constants the charged address arithmetic uses. *)

type lpm = [ `Dir24_8 | `Trie ]
type alloc = [ `Dll | `Array ]
type map = [ `Flow ]

module Lpm = struct
  type choice = lpm

  let all : choice list = [ `Dir24_8; `Trie ]
  let name = function `Dir24_8 -> "dir24_8" | `Trie -> "trie"

  let of_name = function
    | "dir24_8" -> `Dir24_8
    | "trie" -> `Trie
    | s -> invalid_arg ("Backends.Lpm.of_name: " ^ s)

  let kind = function `Dir24_8 -> Lpm_dir24_8.kind | `Trie -> Lpm_trie.kind

  let contract = function
    | `Dir24_8 -> Lpm_dir24_8.Recipe.contract
    | `Trie -> Lpm_trie.Recipe.contract

  (* Neither LPM table exposes a sink fast path, so routers always run
     the generic compiled body under Exec.Specialize. *)
  let specializable (_ : choice) = false

  type repr = Dir24_8 of Lpm_dir24_8.t | Trie of Lpm_trie.t
  type instance = { choice : choice; ds : Exec.Ds.t; repr : repr }

  let create choice ~base ~default_port =
    match choice with
    | `Dir24_8 ->
        let t = Lpm_dir24_8.create ~base ~default_port in
        { choice; ds = Lpm_dir24_8.to_ds t; repr = Dir24_8 t }
    | `Trie ->
        let t = Lpm_trie.create ~base ~default_port in
        { choice; ds = Lpm_trie.to_ds t; repr = Trie t }

  let add_route i ~prefix ~len ~port =
    match i.repr with
    | Dir24_8 t -> Lpm_dir24_8.add_route t ~prefix ~len ~port
    | Trie t -> Lpm_trie.add_route t ~prefix ~len ~port

  let footprint_bytes i =
    match i.repr with
    | Dir24_8 t -> Lpm_dir24_8.footprint_bytes t
    | Trie t -> Lpm_trie.footprint_bytes t
end

module Alloc = struct
  type choice = alloc

  let all : choice list = [ `Dll; `Array ]
  let name = function `Dll -> "dll" | `Array -> "array"

  let of_name = function
    | "dll" -> `Dll
    | "array" -> `Array
    | s -> invalid_arg ("Backends.Alloc.of_name: " ^ s)

  let create choice ~base ~port_lo ~port_hi =
    match choice with
    | `Dll -> Port_alloc.dll ~base ~port_lo ~port_hi
    | `Array -> Port_alloc.array ~base ~port_lo ~port_hi

  (* dll: a 16 B header word pair at base-16 plus one 16 B node per port;
     array: one bitmap word per 64 ports (word_addr = base + 8*w). *)
  let footprint_bytes choice ~ports =
    match choice with
    | `Dll -> 16 + (16 * ports)
    | `Array -> 8 * ((ports + 63) / 64)
end

module Flows = struct
  type choice = map

  let all : choice list = [ `Flow ]
  let name `Flow = "flow"

  let of_name = function
    | "flow" -> `Flow
    | s -> invalid_arg ("Backends.Flows.of_name: " ^ s)

  (* Hash_map: 8 B bucket heads at base, 64 B nodes at base + 8*buckets;
     Flow_table adds one 32 B meta record per entry. *)
  let footprint_bytes (`Flow : choice) ~capacity ~buckets =
    (8 * buckets) + (64 * capacity) + (32 * capacity)
end

(* NAT state = flow table + reverse ext-port array (8 B per port in the
   range) + the chosen allocator. *)
let nat_footprint_bytes ~(alloc : alloc) ~capacity ~buckets ~ports =
  Flows.footprint_bytes `Flow ~capacity ~buckets
  + (8 * ports)
  + Alloc.footprint_bytes alloc ~ports
