(** The NAT's translation state: a {!Flow_table} for the internal
    direction, a direct-indexed external-port array for the return
    direction, and a pluggable {!Port_alloc} — the VigNAT design.

    Expiring a flow frees its external port through the allocator, so the
    allocator's costs surface in the [expire] contract as well as in
    [add_int] — which is what makes the allocator choice visible in the
    whole-NF contract (paper Figures 5–7). *)

type t

val create :
  base:int -> capacity:int -> buckets:int -> timeout:int ->
  ?granularity:int -> alloc:Port_alloc.t -> port_lo:int -> port_hi:int ->
  unit -> t

val size : t -> int
val capacity : t -> int
val allocator : t -> Port_alloc.t

val expire : t -> Exec.Meter.t -> now:int -> int
val lookup_int : t -> Exec.Meter.t -> int array -> now:int -> int
(** 5-word flow key → external port, or [-1]; refreshes on hit. *)

val add_int : t -> Exec.Meter.t -> int array -> now:int -> int
(** Allocate a port and install the flow; [-1] when the table is full or
    ports are exhausted. *)

val lookup_ext : t -> Exec.Meter.t -> port:int -> now:int -> int
(** External port → flow handle, or [-1]; refreshes on hit. *)

val int_field : t -> Exec.Meter.t -> handle:int -> field:int -> int
(** Read word [field] (0–4) of the internal flow key behind [handle]. *)

(** {1 Specialized fast paths}

    Sink twins of the metered operations; see {!Dslib.Hash_map}. *)

val fast_expire : t -> Exec.Ds.sink -> now:int -> int
val fast_lookup_int : t -> Exec.Ds.sink -> int array -> off:int -> now:int -> int
val fast_add_int : t -> Exec.Ds.sink -> int array -> off:int -> now:int -> int
val fast_lookup_ext : t -> Exec.Ds.sink -> port:int -> now:int -> int
val fast_int_field : t -> Exec.Ds.sink -> handle:int -> field:int -> int

val flow_key_quiet : t -> int -> int array
val hash_of_flow : t -> int array -> int
(** Bucket a flow key chains into (uncharged — adversarial synthesis). *)

val to_ds : t -> Exec.Ds.t
(** Methods: [expire(now)], [lookup_int(k0..k4, now)],
    [add_int(k0..k4, now)], [lookup_ext(port, now)],
    [int_field(handle, field)]. *)

val kind : string
val key_len : int

module Recipe : sig
  val contract : alloc_name:string -> Perf.Ds_contract.t list
  (** [alloc_name] is ["dll"] or ["array"]. *)
end
