(* Entry metadata (timestamp + LRU links) lives apart from the hash-map
   nodes: one 32-byte record per entry at [meta_base + 32*i]. *)

type t = {
  map : Hash_map.t;
  ts : int array;
  lru_prev : int array;
  lru_next : int array;
  mutable lru_head : int;  (** oldest *)
  mutable lru_tail : int;  (** newest *)
  meta_base : int;
  timeout : int;
  granularity : int;
  on_expire : (Exec.Meter.t -> value:int -> unit) option;
  on_expire_fast : (Exec.Ds.sink -> value:int -> unit) option;
      (** sink twin of [on_expire]; when absent while [on_expire] is
          present, [expire] cannot be specialized *)
}

let kind = "flow_table"

let create ?seed ~base ~key_len ~capacity ~buckets ~timeout
    ?(granularity = 1) ?on_expire ?on_expire_fast () =
  if timeout <= 0 || granularity <= 0 then
    invalid_arg "Flow_table.create: timeout and granularity must be positive";
  {
    map = Hash_map.create ?seed ~base ~key_len ~capacity ~buckets ();
    ts = Array.make capacity 0;
    lru_prev = Array.make capacity (-1);
    lru_next = Array.make capacity (-1);
    lru_head = -1;
    lru_tail = -1;
    meta_base = base + (8 * buckets) + (64 * capacity);
    timeout;
    granularity;
    on_expire;
    on_expire_fast;
  }

let size t = Hash_map.size t.map
let capacity t = Hash_map.capacity t.map
let key_len t = Hash_map.key_len t.map
let meta_addr t i = t.meta_base + (32 * i)
let stamp t now = now / t.granularity * t.granularity

(* LRU append at tail: 3 stores to the entry's meta line + tail pointer. *)
let lru_append t meter i =
  Costing.charge_store meter ~addr:(meta_addr t i) ();
  Costing.charge_store meter ~addr:(meta_addr t i + 8) ();
  Costing.charge_move meter 2;
  t.lru_prev.(i) <- t.lru_tail;
  t.lru_next.(i) <- -1;
  if t.lru_tail >= 0 then begin
    Costing.charge_store meter ~addr:(meta_addr t t.lru_tail + 16) ();
    t.lru_next.(t.lru_tail) <- i
  end
  else t.lru_head <- i;
  t.lru_tail <- i

let lru_unlink t meter i =
  Costing.charge_store meter ~addr:(meta_addr t i) ();
  Costing.charge_move meter 2;
  let prev = t.lru_prev.(i) and next = t.lru_next.(i) in
  (if prev >= 0 then begin
     Costing.charge_store meter ~addr:(meta_addr t prev + 16) ();
     t.lru_next.(prev) <- next
   end
   else t.lru_head <- next);
  if next >= 0 then begin
    Costing.charge_store meter ~addr:(meta_addr t next + 8) ();
    t.lru_prev.(next) <- prev
  end
  else t.lru_tail <- prev

let refresh t meter i ~now =
  Costing.charge_store meter ~addr:(meta_addr t i + 24) ();
  Costing.charge_alu meter 1;
  t.ts.(i) <- stamp t now;
  lru_unlink t meter i;
  lru_append t meter i

let expire t meter ~now =
  let count = ref 0 in
  Costing.charge_alu meter 2;
  let continue = ref true in
  while !continue do
    Costing.charge_branch meter 1;
    if t.lru_head < 0 then continue := false
    else begin
      let i = t.lru_head in
      Costing.charge_load meter ~addr:(meta_addr t i + 24) ();
      Costing.charge_alu meter 1;
      if t.ts.(i) + t.timeout > now then continue := false
      else begin
        incr count;
        (* read the key back to remove it from the map *)
        let key = Hash_map.key_words t.map i in
        for w = 0 to Hash_map.key_len t.map - 1 do
          Costing.charge_load meter ~addr:(Hash_map.node_addr t.map i + (8 * w))
            ()
        done;
        let value = Hash_map.value_of t.map meter i in
        let probe = Hash_map.remove t.map meter key in
        assert (probe.Hash_map.result = i);
        lru_unlink t meter i;
        Option.iter (fun f -> f meter ~value) t.on_expire
      end
    end
  done;
  Exec.Meter.observe meter Perf.Pcv.expired !count;
  !count

let refresh_entry t meter i ~now = refresh t meter i ~now

let get_probe t meter key ~now =
  let probe = Hash_map.get t.map meter key in
  if probe.Hash_map.result < 0 then (None, probe)
  else begin
    let i = probe.Hash_map.result in
    refresh t meter i ~now;
    (Some (Hash_map.value_of t.map meter i), probe)
  end

let get t meter key ~now = fst (get_probe t meter key ~now)

let map t = t.map

let put t meter key ~value ~now =
  let size_before = Hash_map.size t.map in
  let probe = Hash_map.put t.map meter key value in
  let i = probe.Hash_map.result in
  if i >= 0 then
    if Hash_map.size t.map > size_before then begin
      (* fresh insert: stamp and join the LRU queue *)
      Costing.charge_store meter ~addr:(meta_addr t i + 24) ();
      t.ts.(i) <- stamp t now;
      lru_append t meter i
    end
    else
      (* update in place: the node is already queued — a bare append here
         would corrupt the list (leaving it linked twice) *)
      refresh t meter i ~now;
  i

let mem_quiet t key =
  let meter = Exec.Meter.create (Hw.Model.null ()) in
  let probe = Hash_map.get t.map meter key in
  (* quiet lookup must not disturb LRU order, so bypass [get] *)
  probe.Hash_map.result >= 0

let key_at t i = Hash_map.key_words t.map i
let value_at t i =
  Hash_map.value_of t.map (Exec.Meter.create (Hw.Model.null ())) i

let hash_of_key t key = Hash_map.hash_of_key t.map key

let oldest_first t =
  let rec loop i acc = if i < 0 then List.rev acc
    else loop t.lru_next.(i) (i :: acc)
  in
  loop t.lru_head []

(* ---- specialized fast paths ----------------------------------------

   Sink twins of the metered operations above; see {!Hash_map} for the
   discipline.  [fast_expire] is only offered when the [on_expire]
   callback has a sink twin (or there is no callback at all). *)

module S = Costing.Sink

let fast_lru_append t s i =
  S.store s ~addr:(meta_addr t i) ();
  S.store s ~addr:(meta_addr t i + 8) ();
  S.move s 2;
  t.lru_prev.(i) <- t.lru_tail;
  t.lru_next.(i) <- -1;
  if t.lru_tail >= 0 then begin
    S.store s ~addr:(meta_addr t t.lru_tail + 16) ();
    t.lru_next.(t.lru_tail) <- i
  end
  else t.lru_head <- i;
  t.lru_tail <- i

let fast_lru_unlink t s i =
  S.store s ~addr:(meta_addr t i) ();
  S.move s 2;
  let prev = t.lru_prev.(i) and next = t.lru_next.(i) in
  (if prev >= 0 then begin
     S.store s ~addr:(meta_addr t prev + 16) ();
     t.lru_next.(prev) <- next
   end
   else t.lru_head <- next);
  if next >= 0 then begin
    S.store s ~addr:(meta_addr t next + 8) ();
    t.lru_prev.(next) <- prev
  end
  else t.lru_tail <- prev

(* Batched twin of the unlink+append charges: the timestamp store, the
   self-link stores (1 unlink + 2 append), the two moves each side, and
   one neighbour store per live neighbour — counted, then bulk-bumped. *)
let fast_refresh_batched t s i ~now =
  S.alu s 1;
  S.move s 4;
  t.ts.(i) <- stamp t now;
  let prev = t.lru_prev.(i) and next = t.lru_next.(i) in
  let n1 =
    if prev >= 0 then begin
      t.lru_next.(prev) <- next;
      1
    end
    else begin
      t.lru_head <- next;
      0
    end
  in
  let n2 =
    if next >= 0 then begin
      t.lru_prev.(next) <- prev;
      1
    end
    else begin
      t.lru_tail <- prev;
      0
    end
  in
  t.lru_prev.(i) <- t.lru_tail;
  t.lru_next.(i) <- -1;
  let n3 =
    if t.lru_tail >= 0 then begin
      t.lru_next.(t.lru_tail) <- i;
      1
    end
    else begin
      t.lru_head <- i;
      0
    end
  in
  t.lru_tail <- i;
  S.stores_b s (4 + n1 + n2 + n3)

let fast_refresh t s i ~now =
  if S.batched s then fast_refresh_batched t s i ~now
  else begin
    S.store s ~addr:(meta_addr t i + 24) ();
    S.alu s 1;
    t.ts.(i) <- stamp t now;
    fast_lru_unlink t s i;
    fast_lru_append t s i
  end

let fast_refresh_entry = fast_refresh

let fast_expire t s ~now =
  let count = ref 0 in
  S.alu s 2;
  let continue = ref true in
  while !continue do
    S.branch s 1;
    if t.lru_head < 0 then continue := false
    else begin
      let i = t.lru_head in
      S.load s ~addr:(meta_addr t i + 24) ();
      S.alu s 1;
      if t.ts.(i) + t.timeout > now then continue := false
      else begin
        incr count;
        for w = 0 to Hash_map.key_len t.map - 1 do
          S.load s ~addr:(Hash_map.node_addr t.map i + (8 * w)) ()
        done;
        let value = Hash_map.fast_value_of t.map s i in
        let r = Hash_map.fast_remove_node t.map s i in
        assert (r = i);
        fast_lru_unlink t s i;
        (* direct match, not [Option.iter]: no closure allocation on the
           zero-alloc path *)
        (match t.on_expire_fast with None -> () | Some f -> f s ~value)
      end
    end
  done;
  S.observe s Perf.Pcv.expired !count;
  !count

let fast_get t s (key : int array) ~off ~now =
  let node = Hash_map.fast_get t.map s key ~off in
  if node < 0 then -1
  else begin
    fast_refresh t s node ~now;
    Hash_map.fast_value_of t.map s node
  end

let fast_put t s (key : int array) ~off ~value ~now =
  let size_before = Hash_map.size t.map in
  let i = Hash_map.fast_put t.map s key ~off value in
  if i >= 0 then
    if Hash_map.size t.map > size_before then begin
      S.store s ~addr:(meta_addr t i + 24) ();
      t.ts.(i) <- stamp t now;
      fast_lru_append t s i
    end
    else fast_refresh t s i ~now;
  i

let fast_size t s =
  S.alu s 1;
  S.load s ~addr:(t.meta_base - 8) ();
  size t

let key_word_at t i w = Hash_map.key_word t.map i w

let to_ds t =
  let k = key_len t in
  let call meter meth (args : int array) =
    let key_of_args () = Array.sub args 0 k in
    match meth with
    | "expire" ->
        if Array.length args <> 1 then invalid_arg "flow_table.expire/1";
        expire t meter ~now:args.(0)
    | "get" ->
        if Array.length args <> k + 1 then invalid_arg "flow_table.get";
        let now = args.(k) in
        (match get t meter (key_of_args ()) ~now with
        | Some v -> v
        | None -> -1)
    | "put" ->
        if Array.length args <> k + 2 then invalid_arg "flow_table.put";
        put t meter (key_of_args ()) ~value:args.(k) ~now:args.(k + 1)
    | "size" ->
        Costing.charge_alu meter 1;
        Costing.charge_load meter ~addr:(t.meta_base - 8) ();
        size t
    | other -> invalid_arg ("flow_table: unknown method " ^ other)
  in
  let expire_ok =
    match (t.on_expire, t.on_expire_fast) with
    | Some _, None -> false
    | _ -> true
  in
  let fast_path (s : Exec.Ds.sink) meth =
    match meth with
    | "expire" when expire_ok ->
        Some
          (fun (args : int array) ->
            if Array.length args <> 1 then invalid_arg "flow_table.expire/1";
            fast_expire t s ~now:args.(0))
    | "get" ->
        Some
          (fun args ->
            if Array.length args <> k + 1 then invalid_arg "flow_table.get";
            fast_get t s args ~off:0 ~now:args.(k))
    | "put" ->
        Some
          (fun args ->
            if Array.length args <> k + 2 then invalid_arg "flow_table.put";
            fast_put t s args ~off:0 ~value:args.(k) ~now:args.(k + 1))
    | "size" -> Some (fun _ -> fast_size t s)
    | _ -> None
  in
  Exec.Ds.make ~fast_path ~kind call

module Recipe = struct
  open Perf

  (* LRU append/unlink: at most 3 stores + 2 moves, touching 2 meta
     lines. *)
  let lru_append_cost =
    Cost_vec.make ~ic:(Perf_expr.const 5) ~ma:(Perf_expr.const 3)
      ~cycles:(Costing.cycles_upper ~ic:(Perf_expr.const 5)
                 ~ma:(Perf_expr.const 2))

  let lru_unlink_cost = lru_append_cost

  (* refresh = stamp (2) + unlink + append *)
  let refresh =
    Cost_vec.add
      (Cost_vec.make ~ic:(Perf_expr.const 2) ~ma:(Perf_expr.const 1)
         ~cycles:(Costing.cycles_upper ~ic:(Perf_expr.const 2)
                    ~ma:(Perf_expr.const 1)))
      (Cost_vec.add lru_unlink_cost lru_append_cost)

  let get_hit ~key_len =
    Cost_vec.add (Hash_map.Recipe.get_hit ~key_len) refresh

  let get_miss ~key_len = Hash_map.Recipe.get_miss ~key_len

  let put_new ~key_len =
    Cost_vec.add
      (Hash_map.Recipe.put_new ~key_len)
      (Cost_vec.add
         (Cost_vec.make ~ic:(Perf_expr.const 1) ~ma:(Perf_expr.const 1)
            ~cycles:(Costing.cycles_upper ~ic:(Perf_expr.const 1)
                       ~ma:(Perf_expr.const 1)))
         lru_append_cost)

  let put_full ~key_len = Hash_map.Recipe.put_full ~key_len

  let expire ~key_len ~per_entry_extra =
    let e = Perf_expr.pcv Pcv.expired in
    (* Per expired entry: loop check (2 IC, 1 MA) + key/value read-back
       (k+1 IC, k+1 MA) + map removal (c/t-dependent) + LRU unlink +
       callback. *)
    let per_entry =
      Cost_vec.sum
        [
          Cost_vec.make
            ~ic:(Perf_expr.const (4 + key_len + 1))
            ~ma:(Perf_expr.const (key_len + 2))
            ~cycles:(Costing.cycles_upper
                       ~ic:(Perf_expr.const (4 + key_len + 1))
                       ~ma:(Perf_expr.const 2));
          Hash_map.Recipe.remove_found ~key_len;
          lru_unlink_cost;
          per_entry_extra;
        ]
    in
    let scaled =
      Cost_vec.make
        ~ic:(Perf_expr.mul e (Cost_vec.get per_entry Metric.Instructions))
        ~ma:(Perf_expr.mul e (Cost_vec.get per_entry Metric.Memory_accesses))
        ~cycles:(Perf_expr.mul e (Cost_vec.get per_entry Metric.Cycles))
    in
    (* Fixed part: entry setup + the final surviving-head check. *)
    Cost_vec.add scaled
      (Cost_vec.make ~ic:(Perf_expr.const 5) ~ma:(Perf_expr.const 1)
         ~cycles:(Costing.cycles_upper ~ic:(Perf_expr.const 5)
                    ~ma:(Perf_expr.const 1)))

  let contract ~key_len ?(free_cost = Cost_vec.zero) () =
    let open Ds_contract in
    [
      make ~ds_kind:kind ~meth:"expire"
        [ branch ~tag:"expire" ~note:"e entries past their timeout"
            (expire ~key_len ~per_entry_extra:free_cost) ];
      make ~ds_kind:kind ~meth:"get"
        [
          branch ~tag:"hit" ~note:"flow present (refreshes entry)"
            (get_hit ~key_len);
          branch ~tag:"miss" ~note:"flow absent" (get_miss ~key_len);
        ];
      make ~ds_kind:kind ~meth:"put"
        [
          branch ~tag:"ok" ~note:"inserted (table not full)"
            (put_new ~key_len);
          branch ~tag:"full" ~note:"table full, not inserted"
            (put_full ~key_len);
        ];
      make ~ds_kind:kind ~meth:"size"
        [ branch ~tag:"ok" (Cost_vec.of_consts ~ic:2 ~ma:1
                              ~cycles:(6 * 2 + Hw.Cost.dram_cycles)) ];
    ]
end
