(** DPDK-style two-tiered LPM table (dir-24-8, paper §5.1 "LPM").

    Any packet whose longest matching prefix is ≤ 24 bits costs exactly one
    table lookup; longer matches cost exactly two — which is why the
    paper's LPM has just two interesting input classes (LPM2 vs LPM1). *)

type t

val create : base:int -> default_port:int -> t

val add_route : t -> prefix:int -> len:int -> port:int -> unit
(** Configuration-time (uncharged).  [len] in 10..32; routes with
    [len > 24] allocate a second-tier group for their /24. *)

val lookup : t -> Exec.Meter.t -> int -> int
(** Output port for a destination address.  Observes PCV [l] (the matched
    prefix length rounded to the tier: 24 or 32). *)

val lookup_quiet : t -> int -> int
val uses_tbl8 : t -> int -> bool
(** Does this destination take the two-lookup path?  (tests/workloads) *)

val footprint_bytes : t -> int
(** Bytes of the layout's address space this table occupies: the fixed
    16 MiB first tier plus 256 B per allocated second-tier group. *)

val to_ds : t -> Exec.Ds.t
(** Method: [lookup(dst_ip)]. *)

val kind : string

module Recipe : sig
  val contract : Perf.Ds_contract.t list
  (** Branches: ["short"] (one lookup) and ["long"] (two lookups). *)
end
