let charge_alu meter n = Exec.Meter.instr meter Hw.Cost.Alu n
let charge_branch meter n = Exec.Meter.instr meter Hw.Cost.Branch n
let charge_move meter n = Exec.Meter.instr meter Hw.Cost.Move n
let charge_mul meter n = Exec.Meter.instr meter Hw.Cost.Mul n

let charge_load meter ?(dependent = false) ~addr () =
  Exec.Meter.instr meter Hw.Cost.Load 1;
  Exec.Meter.mem meter ~dependent addr

let charge_store meter ~addr () =
  Exec.Meter.instr meter Hw.Cost.Store 1;
  Exec.Meter.mem meter ~write:true addr

let charge_hash meter ~key_len =
  charge_mul meter key_len;
  charge_alu meter ((2 * key_len) + 1)

(* Sink-flavoured twins of the charge_* helpers above, for the
   specialized fast paths: instruction charges bump the sink's deferred
   per-kind counters (flushed by the compiled runner at packet exits)
   instead of going through the meter's per-event dispatch.  Memory
   charges still fire at the access point — addresses matter to some
   models.  Only sound under a non-coupled, untraced model; the
   specializer guarantees that. *)
module Sink = struct
  let i_alu = Hw.Cost.kind_index Hw.Cost.Alu
  let i_mul = Hw.Cost.kind_index Hw.Cost.Mul
  let i_move = Hw.Cost.kind_index Hw.Cost.Move
  let i_branch = Hw.Cost.kind_index Hw.Cost.Branch
  let i_load = Hw.Cost.kind_index Hw.Cost.Load
  let i_store = Hw.Cost.kind_index Hw.Cost.Store

  let bump (s : Exec.Ds.sink) i n =
    let c = s.Exec.Ds.s_counts in
    Array.unsafe_set c i (Array.unsafe_get c i + n)

  let alu s n = bump s i_alu n
  let branch s n = bump s i_branch n
  let move s n = bump s i_move n
  let mul s n = bump s i_mul n

  (* On an address-insensitive model the access just joins the deferred
     batch (one counter bump); otherwise it fires at its real address. *)
  let i_mem = Hw.Cost.nkinds

  let load (s : Exec.Ds.sink) ?(dependent = false) ~addr () =
    bump s i_load 1;
    if s.Exec.Ds.s_mem_batched then bump s i_mem 1
    else s.Exec.Ds.s_mem ~addr ~write:false ~dependent

  let store (s : Exec.Ds.sink) ~addr () =
    bump s i_store 1;
    if s.Exec.Ds.s_mem_batched then bump s i_mem 1
    else s.Exec.Ds.s_mem ~addr ~write:true ~dependent:false

  let hash s ~key_len =
    mul s key_len;
    alu s ((2 * key_len) + 1)

  let batched (s : Exec.Ds.sink) = s.Exec.Ds.s_mem_batched

  let loads_b s n =
    bump s i_load n;
    bump s i_mem n

  let stores_b s n =
    bump s i_store n;
    bump s i_mem n

  let observe (s : Exec.Ds.sink) pcv v =
    Exec.Meter.observe s.Exec.Ds.s_meter pcv v
end

let ic_hash ~key_len = (3 * key_len) + 1
let ma_hash ~key_len:_ = 0

let cycles_instr_factor = 6

let cycles_upper ~ic ~ma =
  Perf.Perf_expr.add
    (Perf.Perf_expr.scale cycles_instr_factor ic)
    (Perf.Perf_expr.scale Hw.Cost.dram_cycles ma)
