(** Port allocators for the NAT (paper §5.3, "picking the appropriate data
    structure implementation").

    Two implementations of the same interface with deliberately different
    constant factors — both O(1) in the common case:

    - {b Allocator A} ({!dll}): a doubly-linked free list.  Allocation and
      deallocation cost the same handful of dependent pointer accesses
      regardless of churn or occupancy.
    - {b Allocator B} ({!array}): a flag array scanned from a rotating
      hint.  Allocation is very cheap when the table is nearly empty (the
      first probe usually succeeds) and degrades as occupancy grows; the
      scan length is exposed as PCV [s]. *)

type t

val dll : base:int -> port_lo:int -> port_hi:int -> t
(** Allocator A. *)

val array : base:int -> port_lo:int -> port_hi:int -> t
(** Allocator B. *)

val name : t -> string
(** ["dll"] or ["array"]. *)

val alloc : t -> Exec.Meter.t -> int
(** A free port, or [-1] when exhausted.  Allocator B observes PCV [s]. *)

val free : t -> Exec.Meter.t -> int -> unit
(** Raises [Invalid_argument] if the port is not currently allocated. *)

val allocated : t -> int
val capacity : t -> int
val is_allocated : t -> int -> bool

(** {1 Specialized fast paths}

    Sink twins of {!alloc}/{!free}; see {!Hash_map}. *)

val fast_alloc : t -> Exec.Ds.sink -> int
val fast_free : t -> Exec.Ds.sink -> int -> unit

(** {1 Contract recipes} *)

module Recipe : sig
  val alloc_dll : Perf.Cost_vec.t
  val free_dll : Perf.Cost_vec.t
  val alloc_array : Perf.Cost_vec.t
  (** Over PCV [s]. *)

  val free_array : Perf.Cost_vec.t
  val alloc_cost : t -> Perf.Cost_vec.t
  val free_cost : t -> Perf.Cost_vec.t
end
