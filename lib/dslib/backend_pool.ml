let kind = "backend_pool"

type t = { last : int array; base : int; timeout : int }

let create ~base ~count ~timeout =
  if count < 1 || timeout < 1 then invalid_arg "Backend_pool.create";
  { last = Array.make count min_int; base; timeout }

let count t = Array.length t.last

let heartbeat t meter ~backend ~now =
  Costing.charge_alu meter 2;
  Costing.charge_branch meter 1;
  if backend < 0 || backend >= count t then 0
  else begin
    Costing.charge_store meter ~addr:(t.base + (8 * backend)) ();
    t.last.(backend) <- now;
    1
  end

let is_alive t meter ~backend ~now =
  Costing.charge_alu meter 2;
  Costing.charge_branch meter 1;
  if backend < 0 || backend >= count t then 0
  else begin
    Costing.charge_load meter ~addr:(t.base + (8 * backend)) ();
    Costing.charge_alu meter 1;
    Costing.charge_branch meter 1;
    if t.last.(backend) + t.timeout > now then 1 else 0
  end

let set_last_heartbeat t ~backend v = t.last.(backend) <- v

let to_ds t =
  let call meter meth (args : int array) =
    match meth with
    | "heartbeat" -> heartbeat t meter ~backend:args.(0) ~now:args.(1)
    | "is_alive" -> is_alive t meter ~backend:args.(0) ~now:args.(1)
    | other -> invalid_arg ("backend_pool: unknown method " ^ other)
  in
  Exec.Ds.make ~kind call

module Recipe = struct
  open Perf

  let vec ic ma =
    Cost_vec.make ~ic:(Perf_expr.const ic) ~ma:(Perf_expr.const ma)
      ~cycles:(Costing.cycles_upper ~ic:(Perf_expr.const ic)
                 ~ma:(Perf_expr.const ma))

  let contract =
    let open Ds_contract in
    [
      make ~ds_kind:kind ~meth:"heartbeat"
        [ branch ~tag:"ok" ~note:"timestamp store" (vec 4 1) ];
      make ~ds_kind:kind ~meth:"is_alive"
        [
          branch ~tag:"alive" ~note:"heartbeat within timeout" (vec 7 1);
          branch ~tag:"dead" ~note:"no recent heartbeat" (vec 7 1);
        ];
    ]
end
