let kind = "token_bucket"

type t = {
  rate : int;
  burst : int;
  base : int;
  mutable level : int;
  mutable last : int;
}

let create ~base ~rate ~burst ?(now = 0) () =
  if rate < 1 || burst < 1 then invalid_arg "Token_bucket.create";
  { rate; burst; base; level = burst; last = now }

let refill t now =
  if now > t.last then begin
    let delta = now - t.last in
    (* Clamp before multiplying: once [delta] alone refills the bucket
       from empty the exact product is irrelevant, and [rate * delta]
       would overflow for pathological clock jumps. *)
    if delta >= (t.burst + t.rate - 1) / t.rate then t.level <- t.burst
    else t.level <- min t.burst (t.level + (t.rate * delta));
    t.last <- now
  end

let tokens t ~now =
  refill t now;
  t.level

(* The whole bucket state lives on one cache line: one load, one store. *)
let conform t meter ~bytes ~now =
  Costing.charge_load meter ~addr:t.base ();
  Costing.charge_alu meter 4 (* delta, scale, add, clamp *);
  Costing.charge_branch meter 1;
  refill t now;
  Costing.charge_alu meter 1;
  Costing.charge_branch meter 1;
  if bytes <= t.level then begin
    t.level <- t.level - bytes;
    Costing.charge_store meter ~addr:t.base ();
    Costing.charge_alu meter 1;
    1
  end
  else begin
    Costing.charge_store meter ~addr:(t.base + 8) ();
    0
  end

let to_ds t =
  let call meter meth (args : int array) =
    match meth with
    | "conform" -> conform t meter ~bytes:args.(0) ~now:args.(1)
    | other -> invalid_arg ("token_bucket: unknown method " ^ other)
  in
  Exec.Ds.make ~kind call

module Recipe = struct
  open Perf

  let vec ic ma =
    Cost_vec.make ~ic:(Perf_expr.const ic) ~ma:(Perf_expr.const ma)
      ~cycles:(Costing.cycles_upper ~ic:(Perf_expr.const ic)
                 ~ma:(Perf_expr.const ma))

  let contract =
    let open Ds_contract in
    [
      make ~ds_kind:kind ~meth:"conform"
        [
          branch ~tag:"conform" ~note:"tokens available, consumed"
            (vec 10 2);
          branch ~tag:"exceed" ~note:"bucket too low, packet out of profile"
            (vec 9 2);
        ];
    ]
end
