let kind = "hash_ring"

type t = {
  mutable table : int array;
  size : int;
  base : int;
  mutable backend_list : int list;
}

let mix a b = (((a * 0x9e3779b1) lxor (b * 0x85ebca77)) land max_int)

(* Maglev table population: each backend fills slots in the order of its
   own permutation of the table; the backend whose next preferred slot is
   free takes it, round-robin. *)
let populate ~size ~backends =
  let n = List.length backends in
  let arr = Array.of_list backends in
  let offsets = Array.map (fun b -> mix b 1 mod size) arr in
  let skips = Array.map (fun b -> (mix b 2 mod (size - 1)) + 1) arr in
  let next = Array.make n 0 in
  let table = Array.make size (-1) in
  let filled = ref 0 in
  let i = ref 0 in
  while !filled < size do
    let b = !i mod n in
    (* advance backend b's permutation to its next free slot *)
    let rec place () =
      let j = next.(b) in
      next.(b) <- j + 1;
      let slot = (offsets.(b) + (j * skips.(b))) mod size in
      if table.(slot) < 0 then begin
        table.(slot) <- arr.(b);
        incr filled
      end
      else place ()
    in
    if !filled < size then place ();
    incr i
  done;
  table

let is_prime n =
  if n < 2 then false
  else
    let rec loop d = d * d > n || (n mod d <> 0 && loop (d + 1)) in
    loop 2

let create ~base ~table_size ~backends =
  if table_size < 2 then invalid_arg "Hash_ring.create: table too small";
  (* a prime size guarantees every backend's (offset, skip) stride is a
     full permutation, so population always terminates *)
  if not (is_prime table_size) then
    invalid_arg "Hash_ring.create: table size must be prime";
  if backends = [] then invalid_arg "Hash_ring.create: no backends";
  {
    table = populate ~size:table_size ~backends;
    size = table_size;
    base;
    backend_list = backends;
  }

let table_size t = t.size
let backends t = t.backend_list

let rebuild t ~backends =
  if backends = [] then invalid_arg "Hash_ring.rebuild: no backends";
  t.table <- populate ~size:t.size ~backends;
  t.backend_list <- backends

let backend_for t meter h =
  Costing.charge_alu meter 2;
  let slot = h mod t.size in
  Costing.charge_load meter ~addr:(t.base + (4 * slot)) ();
  Costing.charge_alu meter 1;
  t.table.(slot)

let backend_for_quiet t h = backend_for t (Exec.Meter.create (Hw.Model.null ())) h

let share t backend =
  let count = Array.fold_left (fun acc b -> if b = backend then acc + 1 else acc) 0 t.table in
  float_of_int count /. float_of_int t.size

let to_ds t =
  let call meter meth (args : int array) =
    match meth with
    | "backend_for" -> backend_for t meter args.(0)
    | other -> invalid_arg ("hash_ring: unknown method " ^ other)
  in
  Exec.Ds.make ~kind call

module Recipe = struct
  open Perf

  let contract =
    let ic = Perf_expr.const 4 and ma = Perf_expr.const 1 in
    let open Ds_contract in
    [
      make ~ds_kind:kind ~meth:"backend_for"
        [
          branch ~tag:"ok" ~note:"single table read"
            (Cost_vec.make ~ic ~ma
               ~cycles:(Costing.cycles_upper ~ic ~ma:(Perf_expr.const 1)));
        ];
    ]
end
