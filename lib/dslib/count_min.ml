let kind = "count_min"

type t = {
  rows : int;
  width : int;
  counters : int array;  (** rows * width, flattened *)
  base : int;
}

let create ~base ~rows ~width =
  if rows < 1 || rows > 8 then invalid_arg "Count_min.create: rows in 1..8";
  if width < 2 || width land (width - 1) <> 0 then
    invalid_arg "Count_min.create: width must be a power of two";
  { rows; width; counters = Array.make (rows * width) 0; base }

let rows t = t.rows
let width t = t.width

(* Row-seeded multiplicative hash with an avalanche finalizer — the
   width mask keeps only low bits, so high-bit key differences must be
   mixed down before masking. *)
let slot t row key =
  let h =
    Array.fold_left
      (fun acc w -> ((acc * 0x9e3779b1) + w) land max_int)
      ((row + 3) * 0x85ebca77 land max_int)
      key
  in
  let h = (h lxor (h lsr 23)) * 0x2545f491 land max_int in
  let h = h lxor (h lsr 29) in
  h land (t.width - 1)

let counter_addr t row s = t.base + (8 * ((row * t.width) + s))

(* Per row: hash (charged like the map's), one load, add, one store. *)
let charge_row t meter row s ~write =
  Costing.charge_hash meter ~key_len:5;
  Costing.charge_load meter ~addr:(counter_addr t row s) ();
  Costing.charge_alu meter 2;
  if write then Costing.charge_store meter ~addr:(counter_addr t row s) ()

let update t meter ~key =
  Costing.charge_alu meter 2;
  let est = ref max_int in
  for row = 0 to t.rows - 1 do
    let s = slot t row key in
    charge_row t meter row s ~write:true;
    let i = (row * t.width) + s in
    t.counters.(i) <- t.counters.(i) + 1;
    est := min !est t.counters.(i)
  done;
  Costing.charge_alu meter 1;
  !est

let estimate t meter ~key =
  Costing.charge_alu meter 2;
  let est = ref max_int in
  for row = 0 to t.rows - 1 do
    let s = slot t row key in
    charge_row t meter row s ~write:false;
    est := min !est t.counters.((row * t.width) + s)
  done;
  Costing.charge_alu meter 1;
  !est

let estimate_quiet t key =
  estimate t (Exec.Meter.create (Hw.Model.null ())) ~key

let decay t =
  Array.iteri (fun i c -> t.counters.(i) <- c / 2) t.counters

let to_ds t =
  let call meter meth (args : int array) =
    let key = Array.sub args 0 5 in
    match meth with
    | "update" -> update t meter ~key
    | "estimate" -> estimate t meter ~key
    | other -> invalid_arg ("count_min: unknown method " ^ other)
  in
  Exec.Ds.make ~kind call

module Recipe = struct
  open Perf

  (* per row: hash (3*5+1 = 16 IC) + load + 2 alu (+store) *)
  let vec ~rows ~write =
    let per_row = 16 + 1 + 2 + (if write then 1 else 0) in
    let ic = (rows * per_row) + 3 in
    let ma = rows * (if write then 2 else 1) in
    Cost_vec.make ~ic:(Perf_expr.const ic) ~ma:(Perf_expr.const ma)
      ~cycles:(Costing.cycles_upper ~ic:(Perf_expr.const ic)
                 ~ma:(Perf_expr.const (rows * (if write then 2 else 1))))

  let contract ~rows =
    let open Ds_contract in
    [
      make ~ds_kind:kind ~meth:"update"
        [ branch ~tag:"ok" ~note:"d hashed increments, min estimate"
            (vec ~rows ~write:true) ];
      make ~ds_kind:kind ~meth:"estimate"
        [ branch ~tag:"ok" ~note:"d hashed reads, min estimate"
            (vec ~rows ~write:false) ];
    ]
end
