(** The shared cost table.

    Both the production ("measured") interpreter and the BOLT analysis
    ("predicted") charge instructions through this single table, mirroring
    the paper's setup where Pin-observed traces and contract expressions
    both count x86 instructions.  Keeping one table guarantees that the
    prediction gap comes only from the paper's real gap sources — contract
    coalescing and model-vs-production build differences — not from
    accounting skew. *)

(** Instruction kinds, a coarse x86-like classification. *)
type kind =
  | Alu  (** add/sub/logic/compare *)
  | Mul
  | Div
  | Move  (** register moves, immediates *)
  | Branch  (** conditional and unconditional jumps *)
  | Load  (** memory read (the access itself is a separate event) *)
  | Store  (** memory write *)
  | Call
  | Ret

val all_kinds : kind list
val kind_to_string : kind -> string

val nkinds : int
(** Number of instruction kinds (length of {!all_kinds}). *)

val kind_index : kind -> int
(** Dense index of a kind in [0, nkinds): the shared layout for deferred
    per-kind instruction counters in the compiled fast path and the dslib
    specialized fast paths. *)

val kind_of_index : kind array
(** Inverse of {!kind_index}. *)

val worst_case_cycles : kind -> int
(** Conservative per-instruction latency, as BOLT takes from the Intel
    optimisation manual's worst cases (paper §3.5). *)

(** {1 Memory-hierarchy constants} *)

val line_size : int
(** Cache line size in bytes (64). *)

val l1_hit_cycles : int
val l2_hit_cycles : int
val l3_hit_cycles : int
val dram_cycles : int

val prefetched_hit_cycles : int
(** Cost of an access caught by the next-line prefetcher: the prefetch is
    in flight, so part of the DRAM latency is hidden. *)

val mlp_max : int
(** Maximum memory-level parallelism: how many independent misses the
    realistic model lets overlap. *)

val ipc : int
(** Superscalar retire width assumed by the realistic model. *)

(** {1 Stateless-code charging conventions}

    How many instructions each NF IR construct costs.  Used by both the
    concrete interpreter and the trace analysis. *)

val cost_assign : int
val cost_binop_alu : int
val cost_binop_mul : int
val cost_binop_div : int
val cost_unop : int
val cost_branch : int
val cost_load : int
val cost_store : int
val cost_call_overhead : int
(** Call/return bookkeeping charged around every stateful-method call.
    The analysis build charges one extra {!cost_call_overhead} per call —
    the stand-in for the paper's disabled link-time optimisation, its
    second source of (deliberate, conservative) over-estimation. *)

val cost_return : int
