type kind = Alu | Mul | Div | Move | Branch | Load | Store | Call | Ret

let all_kinds = [ Alu; Mul; Div; Move; Branch; Load; Store; Call; Ret ]
let nkinds = 9

let kind_index = function
  | Alu -> 0
  | Mul -> 1
  | Div -> 2
  | Move -> 3
  | Branch -> 4
  | Load -> 5
  | Store -> 6
  | Call -> 7
  | Ret -> 8

let kind_of_index = [| Alu; Mul; Div; Move; Branch; Load; Store; Call; Ret |]

let kind_to_string = function
  | Alu -> "alu"
  | Mul -> "mul"
  | Div -> "div"
  | Move -> "move"
  | Branch -> "branch"
  | Load -> "load"
  | Store -> "store"
  | Call -> "call"
  | Ret -> "ret"

let worst_case_cycles = function
  | Alu -> 1
  | Mul -> 5
  | Div -> 90
  | Move -> 1
  | Branch -> 17 (* assume mispredicted: pipeline-flush worst case *)
  | Load -> 1 (* address generation; the access is charged separately *)
  | Store -> 1
  | Call -> 3
  | Ret -> 3

let line_size = 64
let l1_hit_cycles = 4
let l2_hit_cycles = 12
let l3_hit_cycles = 42
let dram_cycles = 200
let prefetched_hit_cycles = 30
let mlp_max = 4
let ipc = 3

let cost_assign = 1
let cost_binop_alu = 1
let cost_binop_mul = 1
let cost_binop_div = 1
let cost_unop = 1
let cost_branch = 1
let cost_load = 1
let cost_store = 1
let cost_call_overhead = 2
let cost_return = 1
