(** First-class hardware models.

    The interpreter and the trace analysis are parametric in the cycle
    model; this record packages {!Conservative} and {!Realistic} behind
    one interface. *)

type t = {
  name : string;
  instr : Cost.kind -> int -> unit;
  mem : addr:int -> write:bool -> dependent:bool -> unit;
  cycles : unit -> int;
  instr_count : unit -> int;
  mem_count : unit -> int;
  boundary : (int * int) list -> unit;
      (** Per-packet hook: the given [(base, size)] regions were rewritten
          by DMA.  No-op except in the realistic simulator. *)
  mem_bulk : (int -> unit) option;
      (** [Some f] when the model prices every access identically —
          ignoring address, direction and dependence — with [f n]
          equivalent to [n] individual {!mem} charges.  Lets a client
          with statically countable accesses batch them like deferred
          instruction charges.  [None] for address-sensitive models
          (L1 tracking, burst windows), whose clients must report each
          access at its real address. *)
  coupled_mem : bool;
      (** [mem] reads instruction-count state (the realistic simulator's
          burst-window overlap detection), so a client that batches
          deferred [instr] charges must flush them before every [mem]
          charge to keep cycle counts exact.  [instr] itself is linear
          in its count argument in every model — same-kind charges may
          be merged freely between memory accesses. *)
}

val conservative : unit -> t
(** Fresh cold conservative model (one per analysed path). *)

val realistic : unit -> t
(** Fresh realistic simulator (one per scenario; stays warm). *)

val of_realistic : Realistic.t -> t
(** Wrap an existing simulator so its warm state is shared across
    packets. *)

val null : unit -> t
(** A fresh counter-only model: counts instructions and accesses but
    charges no cycles — for runs where only IC/MA matter. *)

val dram_only : unit -> t
(** An even more conservative model than {!conservative}: every memory
    access is priced at DRAM latency, with no attempt to prove L1 hits.
    Exists for the hardware-model ablation — it quantifies how much the
    paper's L1 locality tracking (§3.5) buys. *)
