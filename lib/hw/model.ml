type t = {
  name : string;
  instr : Cost.kind -> int -> unit;
  mem : addr:int -> write:bool -> dependent:bool -> unit;
  cycles : unit -> int;
  instr_count : unit -> int;
  mem_count : unit -> int;
  boundary : (int * int) list -> unit;
  mem_bulk : (int -> unit) option;
  coupled_mem : bool;
}

let conservative () =
  let m = Conservative.create () in
  {
    name = "conservative";
    mem_bulk = None;
    coupled_mem = false;
    (* eta-expanded so the stored closures carry their full arity:
       a bare partial application is applied one argument at a time,
       allocating an intermediate closure on every single charge *)
    instr = (fun kind n -> Conservative.instr m kind n);
    mem =
      (fun ~addr ~write ~dependent -> Conservative.mem m ~addr ~write ~dependent);
    cycles = (fun () -> Conservative.cycles m);
    instr_count = (fun () -> Conservative.instr_count m);
    mem_count = (fun () -> Conservative.mem_count m);
    boundary = (fun _ -> ());
  }

let of_realistic m =
  {
    name = "realistic";
    mem_bulk = None;
    coupled_mem = true;
    instr = (fun kind n -> Realistic.instr m kind n);
    mem =
      (fun ~addr ~write ~dependent -> Realistic.mem m ~addr ~write ~dependent);
    cycles = (fun () -> Realistic.cycles m);
    instr_count = (fun () -> Realistic.instr_count m);
    mem_count = (fun () -> Realistic.mem_count m);
    boundary = (fun regions -> Realistic.packet_boundary m ~regions);
  }

let realistic () = of_realistic (Realistic.create ())

let dram_only () =
  let instrs = ref 0 and mems = ref 0 and cycles = ref 0 in
  {
    name = "dram_only";
    mem_bulk =
      Some
        (fun n ->
          mems := !mems + n;
          cycles := !cycles + (n * Cost.dram_cycles));
    coupled_mem = false;
    instr =
      (fun kind n ->
        instrs := !instrs + n;
        cycles := !cycles + (n * Cost.worst_case_cycles kind));
    mem =
      (fun ~addr:_ ~write:_ ~dependent:_ ->
        incr mems;
        cycles := !cycles + Cost.dram_cycles);
    cycles = (fun () -> !cycles);
    instr_count = (fun () -> !instrs);
    mem_count = (fun () -> !mems);
    boundary = (fun _ -> ());
  }

let null () =
  let instrs = ref 0 and mems = ref 0 in
  {
    name = "null";
    mem_bulk = Some (fun n -> mems := !mems + n);
    coupled_mem = false;
    instr = (fun _ n -> instrs := !instrs + n);
    mem = (fun ~addr:_ ~write:_ ~dependent:_ -> incr mems);
    cycles = (fun () -> 0);
    instr_count = (fun () -> !instrs);
    mem_count = (fun () -> !mems);
    boundary = (fun _ -> ());
  }
