(* Regenerates every table and figure of the paper's evaluation (§5).

   Usage:
     dune exec bench/main.exe                 — everything
     dune exec bench/main.exe -- figure1      — one artifact
     dune exec bench/main.exe -- --quick      — smaller workloads
     dune exec bench/main.exe -- --csv DIR    — also dump figure series as CSV
     dune exec bench/main.exe -- --jobs N     — domain-pool size (also BOLT_JOBS)
     dune exec bench/main.exe -- --trace FILE — write a Chrome trace of the run
     dune exec bench/main.exe -- speedup --json BENCH_pipeline.json
                                              — parallel-pipeline speedup +
                                                solver-cache hit rates
     dune exec bench/main.exe -- throughput --json BENCH_throughput.json
                                              — interpreted vs closure-compiled
                                                packets/sec
     dune exec bench/main.exe -- soak --json BENCH_soak.json
                                              — attack-class soak: specialized
                                                pps + contract soundness
     dune exec bench/main.exe -- soak --shards 4
                                              — also replay the soak classes
                                                through the sharded dataplane
     dune exec bench/main.exe -- scale --json BENCH_scale.json
                                              — sharded dataplane: scalability
                                                contract vs measured pps at
                                                1/2/4 shards + affinity oracles
     dune exec bench/main.exe -- topo --json BENCH_topo.json
                                              — network-wide contracts: joint
                                                topology bound vs naive
                                                addition + replay soundness
     dune exec bench/main.exe -- bechamel     — micro-benchmarks only *)

let quick = ref false
let csv_dir : string option ref = ref None
let jobs : int option ref = ref None
let json_path : string option ref = ref None
let trace_path : string option ref = ref None
let soak_shards = ref 1

let section title = Fmt.pr "@.==== %s ====@.@." title

(* Optionally dump a figure's series as CSV for plotting. *)
let write_csv name header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (header ^ "\n");
          List.iter (fun row -> output_string oc (row ^ "\n")) rows);
      Fmt.pr "  [wrote %s]@." path

(* Every tracked BENCH_*.json carries the environment provenance block,
   so artifact numbers are self-describing (1-core CI container vs a
   real multicore host). *)
let write_json ?packets fields =
  match !json_path with
  | None -> ()
  | Some path ->
      let j =
        Perf.Json.Obj
          (fields @ [ ("provenance", Perf.Provenance.json ?packets ()) ])
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Perf.Json.to_string ~indent:true j);
          output_string oc "\n");
      Fmt.pr "  [wrote %s]@." path

(* ---- Artifacts -------------------------------------------------------- *)

let table1 () =
  section "Table 1 — stylised contract for the example LPM router";
  Experiments.Exhibits.table1 Fmt.stdout

let table2 () =
  section "Table 2 — performance contract for lpmGet";
  Experiments.Exhibits.table2 Fmt.stdout

let figure1_table3 () =
  section
    "Figure 1 + Table 3 — predicted vs measured IC, MA and cycles for 14 \
     NF/class scenarios";
  let params =
    if !quick then Experiments.Scenarios.quick_params
    else Experiments.Scenarios.default_params
  in
  let rows = Experiments.Scenarios.figure1_table3 ~params ?jobs:!jobs () in
  Experiments.Harness.pp_rows
    ~title:
      (Printf.sprintf
         "(pathological tables: %d entries; typical scenarios: %d flows)"
         params.Experiments.Scenarios.patho_capacity
         params.Experiments.Scenarios.flows)
    Fmt.stdout rows;
  let max_ic, max_ma =
    List.fold_left
      (fun (ic, ma) (r : Experiments.Harness.row) ->
        ( Float.max ic
            (Experiments.Harness.over_estimate_pct
               ~predicted:r.Experiments.Harness.predicted.Experiments.Harness.ic
               ~measured:r.Experiments.Harness.measured.Experiments.Harness.ic),
          Float.max ma
            (Experiments.Harness.over_estimate_pct
               ~predicted:r.Experiments.Harness.predicted.Experiments.Harness.ma
               ~measured:r.Experiments.Harness.measured.Experiments.Harness.ma) ))
      (0., 0.) rows
  in
  Fmt.pr "@.maximum over-estimation: IC %.1f%%, MA %.1f%% (paper: 7.5%% / \
          7.6%%)@."
    max_ic max_ma

let p123 () =
  section "P1/P2/P3 — hardware-model validation microbenchmarks (§5.1)";
  Experiments.Microbench.print Fmt.stdout
    (Experiments.Microbench.run ~nodes:(if !quick then 1024 else 8192) ())

let table4 () =
  section "Table 4 — bridge contract (rehash defence cliff)";
  Experiments.Exhibits.table4 Fmt.stdout

let figure2 () =
  section
    "Figure 2 — CCDF of bucket traversals vs predicted IC (threshold \
     choice)";
  let points =
    Experiments.Attack.figure2 ~packets:(if !quick then 4_000 else 20_000) ()
  in
  Experiments.Attack.print Fmt.stdout points;
  write_csv "figure2" "traversals,ccdf,predicted_ic"
    (List.map
       (fun (p : Experiments.Attack.point) ->
         Printf.sprintf "%d,%f,%d" p.Experiments.Attack.traversals
           p.Experiments.Attack.ccdf p.Experiments.Attack.predicted_ic)
       points)

let table5 () =
  section "Table 5 — firewall, static router and chain contracts";
  Experiments.Exhibits.table5 Fmt.stdout

let figure3 () =
  section "Figure 3 — composite firewall+router vs naive addition";
  Experiments.Exhibits.figure3
    ~packets:(if !quick then 128 else 512)
    Fmt.stdout

let table6 () =
  section "Table 6 — VigNAT performance contract";
  Experiments.Exhibits.table6 Fmt.stdout

let tables7_8_figure4 () =
  section
    "Tables 7/8 + Figure 4 — the VigNAT expiry-batching bug and its fix";
  let packets = if !quick then 6_000 else 24_000 in
  let t7, t8 = Experiments.Vignat.tables7_8 ~packets () in
  Experiments.Vignat.print_report
    ~label:"Table 7 — second granularity (original)" Fmt.stdout t7;
  Experiments.Vignat.print_report
    ~label:"Table 8 — millisecond granularity (fixed)" Fmt.stdout t8;
  let tail r k =
    List.filter (fun (_, p) -> p > 0.) r.Experiments.Vignat.latency_ccdf
    |> fun l ->
    let n = List.length l in
    List.filteri (fun i _ -> i >= n - k) l
  in
  Fmt.pr "@.Figure 4 — latency CCDF tails (cycles, last 5 points with \
          mass):@.";
  Fmt.pr "  second granularity:      %a@."
    Fmt.(list ~sep:(any "  ") (pair ~sep:(any ":") int float))
    (tail t7 5);
  Fmt.pr "  millisecond granularity: %a@."
    Fmt.(list ~sep:(any "  ") (pair ~sep:(any ":") int float))
    (tail t8 5);
  let dump name r =
    write_csv name "latency_cycles,ccdf"
      (List.map
         (fun (v, p) -> Printf.sprintf "%d,%f" v p)
         r.Experiments.Vignat.latency_ccdf)
  in
  dump "figure4_second_granularity" t7;
  dump "figure4_millisecond_granularity" t8

let figures5_6_7 () =
  section
    "Figures 5/6/7 — allocator A (dll) vs allocator B (array) under churn";
  let packets = if !quick then 6_000 else 20_000 in
  let low, high = Experiments.Allocators.figure5_6_7 ~packets () in
  Experiments.Allocators.print Fmt.stdout low;
  Experiments.Allocators.print Fmt.stdout high;
  let dump name (r : Experiments.Allocators.result) =
    let line cdf = List.map (fun (v, p) -> Printf.sprintf "%d,%f" v p) cdf in
    write_csv (name ^ "_alloc_a") "latency_cycles,cdf"
      (line r.Experiments.Allocators.cdf_a);
    write_csv (name ^ "_alloc_b") "latency_cycles,cdf"
      (line r.Experiments.Allocators.cdf_b)
  in
  dump "figure6_low_churn" low;
  dump "figure7_high_churn" high

(* ---- Parallel-pipeline speedup ----------------------------------------- *)

(* Wall-clock for the full Figure 1 scenario pipeline (contract
   derivation + 14 measured runs) at several domain-pool sizes, plus the
   solver cache's hit rate — the trajectory artifact future scaling PRs
   compare against (BENCH_pipeline.json). *)
let speedup () =
  section "Speedup — domain-pool scaling of the Figure 1 pipeline";
  let params =
    if !quick then Experiments.Scenarios.quick_params
    else Experiments.Scenarios.default_params
  in
  let cores = Domain.recommended_domain_count () in
  let top =
    match !jobs with Some n -> n | None -> max 4 (Exec.Pool.default_jobs ())
  in
  let levels = List.sort_uniq compare [ 1; top ] in
  let run_level j =
    Solver.Cache.reset ();
    let t0 = Unix.gettimeofday () in
    let rows = Experiments.Scenarios.figure1_table3 ~params ~jobs:j () in
    let wall = Unix.gettimeofday () -. t0 in
    let stats = Solver.Cache.stats () in
    (j, wall, stats, rows)
  in
  let results = List.map run_level levels in
  let _, wall1, _, rows1 = List.hd results in
  List.iter
    (fun (j, wall, stats, rows) ->
      if rows <> rows1 then
        failwith
          (Printf.sprintf
             "speedup: jobs:%d rows differ from jobs:1 — determinism bug" j);
      Fmt.pr
        "  jobs:%-3d  wall %6.2fs  speedup x%4.2f  solver cache: %d hits / \
         %d misses (%.1f%% hit rate)@."
        j wall (wall1 /. wall) stats.Solver.Cache.hits
        stats.Solver.Cache.misses
        (100. *. Solver.Cache.hit_rate stats))
    results;
  Fmt.pr "  (%d hardware thread%s available to this process)@." cores
    (if cores = 1 then "" else "s");
  if cores = 1 then
    Fmt.pr
      "  NOTE: single-core environment — domain fan-out cannot improve \
       wall-clock here;@.  the determinism cross-check above still \
       exercises the parallel path.@.";
  let ms w = int_of_float (w *. 1000.) in
  write_json
    [
      ("artifact", Perf.Json.String "pipeline_speedup");
      ("quick", Perf.Json.Bool !quick);
      ("cores", Perf.Json.Int cores);
      ( "levels",
        Perf.Json.List
          (List.map
             (fun (j, wall, stats, _) ->
               Perf.Json.Obj
                 [
                   ("jobs", Perf.Json.Int j);
                   ("wall_ms", Perf.Json.Int (ms wall));
                   ("cache_hits", Perf.Json.Int stats.Solver.Cache.hits);
                   ("cache_misses", Perf.Json.Int stats.Solver.Cache.misses);
                 ])
             results) );
    ]

(* ---- Extensions and ablations ------------------------------------------ *)

let conntrack () =
  section
    "Extension — connection-tracking firewall, predicted vs measured";
  let params =
    if !quick then Experiments.Scenarios.quick_params
    else Experiments.Scenarios.default_params
  in
  Experiments.Harness.pp_rows ~title:"CT1-CT5 (same harness as Figure 1)"
    Fmt.stdout
    (Experiments.Scenarios.conntrack_rows ~params ?jobs:!jobs ())

let floors () =
  section "Extension — guaranteed throughput floors (paper §6 future work)";
  Experiments.Extensions.throughput_table Fmt.stdout

(* ---- Wall-clock throughput: interpreter vs compiled vs specialized ----- *)

(* The same established-flow stream replayed through [Exec.Interp],
   [Exec.Compiled] (translated once, outside the timed region) and
   [Exec.Specialize] (additionally frozen against the stream's
   configuration), reporting packets/sec and ns/packet for each.  Null
   hardware model and a fresh data-structure environment per timed run,
   so the numbers isolate executor overhead over identical metered
   semantics.  Every stream entry carries its own packet copy — several
   NFs rewrite headers in place (TTL decrement, NAT translation), and a
   shared buffer would feed each replica its predecessor's output
   instead of fresh traffic.  Before anything is timed, the specialized
   engine is replayed against the interpreter on the head of the stream
   and must agree exactly (outcomes, costs, observations, packet
   bytes) — a standing guard against specialization drift in the very
   binary producing the numbers; the deep equivalence campaign lives in
   the test suite and fuzz oracle.  Best of several interleaved runs per
   engine; the stream is rebuilt per run because execution mutates
   packet buffers.  The specialized row also reports steady-state
   minor-heap allocation, which Exec.Specialize pins at exactly 0
   words/packet. *)
let exec_throughput () =
  section "Throughput — interpreted vs compiled vs config-specialized";
  let packets = if !quick then 4_000 else 40_000 in
  let nf_names = [ "firewall"; "static_router"; "nat"; "bridge" ] in
  let stream_of ?(packets = packets) rng =
    let flows = Workload.Gen.distinct_flows rng 64 in
    let base = Workload.Gen.packets_of_flows flows in
    let rec replicate acc n =
      if n <= 0 then acc
      else
        replicate
          (List.map (fun p -> Net.Packet.copy p) base @ acc)
          (n - List.length base)
    in
    Workload.Stream.constant_rate ~in_port:0 ~start:1_000_000 ~gap:100
      (replicate [] packets)
  in
  let parity_check (entry : Nf.Registry.entry) =
    let n = 256 in
    let replay exec =
      List.map
        (fun (e : Workload.Stream.entry) ->
          let r =
            exec ~in_port:e.Workload.Stream.in_port ~now:e.Workload.Stream.now
              e.Workload.Stream.packet
          in
          (r, Net.Packet.to_bytes e.Workload.Stream.packet))
        (stream_of ~packets:n (Workload.Prng.create ~seed:42))
    in
    let interp =
      let meter = Exec.Meter.create (Hw.Model.null ()) in
      let dss = entry.Nf.Registry.setup (Dslib.Layout.allocator ()) in
      replay (fun ~in_port ~now packet ->
          Exec.Meter.reset_observations meter;
          let r =
            Exec.Interp.run ~meter ~mode:(Exec.Interp.Production dss) ~in_port
              ~now entry.Nf.Registry.program packet
          in
          (r, Exec.Meter.observations meter))
    in
    let spec =
      let meter = Exec.Meter.create (Hw.Model.null ()) in
      let sp, _ = Nf.Registry.specialize entry ~meter in
      replay (fun ~in_port ~now packet ->
          Exec.Meter.reset_observations meter;
          let r = Exec.Specialize.run sp ~in_port ~now packet in
          (r, Exec.Meter.observations meter))
    in
    if interp <> spec then
      failwith
        (entry.Nf.Registry.name
       ^ ": specialized execution diverged from the interpreter")
  in
  let time_run entry engine =
    let dss = entry.Nf.Registry.setup (Dslib.Layout.allocator ()) in
    let mode = Exec.Interp.Production dss in
    let meter = Exec.Meter.create (Hw.Model.null ()) in
    let program = entry.Nf.Registry.program in
    let stream = stream_of (Workload.Prng.create ~seed:42) in
    (* engine dispatch happens once, outside the timed loop *)
    let process : in_port:int -> now:int -> Net.Packet.t -> unit =
      match engine with
      | `Interp ->
          fun ~in_port ~now packet ->
            ignore (Exec.Interp.run ~meter ~mode ~in_port ~now program packet)
      | `Compiled ->
          let r =
            Exec.Compiled.runner (Exec.Compiled.compile program) ~meter ~mode
          in
          fun ~in_port ~now packet -> ignore (r ~in_port ~now packet)
      | `Specialized ->
          let sp, _ = Nf.Registry.specialize entry ~meter in
          fun ~in_port ~now packet ->
            ignore (Exec.Specialize.exec sp ~in_port ~now packet : int)
    in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (e : Workload.Stream.entry) ->
        Exec.Meter.reset_observations meter;
        process ~in_port:e.Workload.Stream.in_port ~now:e.Workload.Stream.now
          e.Workload.Stream.packet)
      stream;
    Unix.gettimeofday () -. t0
  in
  (* steady-state minor-heap words per packet on the specialized path,
     measured after a warm-up pass (tables populated, meter observation
     arrays grown); the two trailing [Gc.minor_words] reads cancel the
     cost of the measurement itself *)
  let alloc_per_packet entry =
    let meter = Exec.Meter.create (Hw.Model.null ()) in
    let sp, _ = Nf.Registry.specialize entry ~meter in
    let n = 2048 in
    let stream =
      Array.of_list
        (stream_of ~packets:(2 * n) (Workload.Prng.create ~seed:42))
    in
    let run lo hi =
      for i = lo to hi - 1 do
        let e = stream.(i) in
        Exec.Meter.reset_observations meter;
        ignore
          (Exec.Specialize.exec sp ~in_port:e.Workload.Stream.in_port
             ~now:e.Workload.Stream.now e.Workload.Stream.packet
            : int)
      done
    in
    run 0 n;
    let w0 = Gc.minor_words () in
    run n (2 * n);
    let w1 = Gc.minor_words () in
    let w2 = Gc.minor_words () in
    (w1 -. w0 -. (w2 -. w1)) /. float_of_int n
  in
  (* interleave the three engines and keep each one's best wall-clock,
     so a slow spell on a shared machine penalizes all sides alike *)
  let measure entry =
    let reps = if !quick then 3 else 5 in
    let rec go i (bi, bc, bs) =
      if i = 0 then (bi, bc, bs)
      else
        let wi = time_run entry `Interp in
        let wc = time_run entry `Compiled in
        let ws = time_run entry `Specialized in
        go (i - 1) (Float.min bi wi, Float.min bc wc, Float.min bs ws)
    in
    go reps (infinity, infinity, infinity)
  in
  let rows =
    List.map
      (fun name ->
        let entry = Nf.Registry.find name in
        parity_check entry;
        let wi, wc, ws = measure entry in
        let words = alloc_per_packet entry in
        let pps w = float_of_int packets /. w in
        Fmt.pr
          "  %-14s interp %8.0f pps   compiled %8.0f pps (x%.2f)   \
           specialized %9.0f pps (x%.2f)   alloc %.2f w/pkt@."
          name (pps wi) (pps wc) (wi /. wc) (pps ws) (wi /. ws) words;
        (name, wi, wc, ws, words))
      nf_names
  in
  write_json ~packets
    [
      ("artifact", Perf.Json.String "exec_throughput");
      ("quick", Perf.Json.Bool !quick);
      ("packets", Perf.Json.Int packets);
      ( "nfs",
        Perf.Json.List
          (List.map
             (fun (name, wi, wc, ws, words) ->
               let pps w = int_of_float (float_of_int packets /. w) in
               let ns w = int_of_float (w *. 1e9 /. float_of_int packets) in
               Perf.Json.Obj
                 [
                   ("nf", Perf.Json.String name);
                   ("interp_pps", Perf.Json.Int (pps wi));
                   ("interp_ns_per_packet", Perf.Json.Int (ns wi));
                   ("compiled_pps", Perf.Json.Int (pps wc));
                   ("compiled_ns_per_packet", Perf.Json.Int (ns wc));
                   ( "speedup_pct",
                     Perf.Json.Int (int_of_float (100. *. wi /. wc)) );
                   ("specialized_pps", Perf.Json.Int (pps ws));
                   ("specialized_ns_per_packet", Perf.Json.Int (ns ws));
                   ( "specialized_speedup_pct",
                     Perf.Json.Int (int_of_float (100. *. wi /. ws)) );
                   ( "alloc_minor_words_per_packet",
                     Perf.Json.Int (int_of_float (Float.round words)) );
                 ])
             rows) );
    ];
  let best =
    List.fold_left
      (fun acc (_, wi, _, ws, _) -> Float.max acc (wi /. ws))
      0. rows
  in
  Fmt.pr "@.  best speedup x%.2f (specialize once, replay millions)@." best

(* ---- Soak: production-shaped attack classes on the specialized path --- *)

(* Each attack class replays a large production-shaped stream (Zipf
   popularity, heavy-tailed bursts, million-flow churn, a collision
   flood aimed at one bucket, a prefix flood aimed at one tbl8 slot)
   through the config-specialized engine and reports two things per
   class: wall-clock pps (best of several runs, fresh state per run) and
   the contract-soundness verdict — a slice of the same stream replayed
   under the conservative meter with every packet checked against the
   analysed worst case at its own PCVs ([Experiments.Validate]).  The
   point of the pairing: an attack class may degrade throughput (the
   collision flood demonstrably does, vs uniform) but must never escape
   the contract. *)
let soak () =
  section "Soak — attack-class throughput + contract soundness";
  let packets = if !quick then 10_000 else 100_000 in
  let churn_flows = if !quick then 50_000 else 1_048_576 in
  let flood_flows = if !quick then 512 else 2_048 in
  let sound_packets = if !quick then 2_000 else 20_000 in
  let universe = 65_536 in
  (* a small NAT, so floods reach full chains and churn cycles the table:
     1024 entries, timeout = 1024 packets' worth of stream time *)
  let nat_config =
    {
      Nf.Nat.default_config with
      capacity = 1024;
      buckets = 1024;
      timeout = 102_400;
      granularity = 100;
      port_lo = 1024;
      port_hi = 3071;
    }
  in
  let nat_spec = Nf.Spec.Nat nat_config in
  let nat_entry = Nf.Registry.of_spec nat_spec in
  (* an LPM FIB with one >24-bit route, so exactly one /24 slot pays the
     second tbl8 access — the slot the prefix flood aims at *)
  let long_slot = Net.Ipv4.addr_of_parts 93 184 216 0 in
  let lpm_routes = (long_slot, 28, 2) :: Nf.Spec.default_routes in
  let lpm_spec = Nf.Spec.with_routes (Nf.Spec.of_name "lpm_router") lpm_routes in
  let lpm_entry = Nf.Registry.of_spec lpm_spec in
  let base_packets name =
    let rng = Workload.Prng.create ~seed:2025 in
    match name with
    | "uniform" ->
        List.init packets (fun _ ->
            Workload.Soak.packet_of_index (Workload.Prng.below rng universe))
    | "zipf" ->
        let z = Workload.Soak.zipf ~n:universe ~theta:0.99 in
        Workload.Soak.zipf_packets rng z packets
    | "heavy_tail" ->
        let z = Workload.Soak.zipf ~n:universe ~theta:0.99 in
        Workload.Soak.heavy_tail_packets rng z ~alpha:1.3 ~max_burst:256
          packets
    | "churn" -> Workload.Soak.churn_packets ~offset:0 churn_flows
    | "collision_flood" ->
        (* every flow chains into bucket 0 of the NAT's geometry; cycle
           [flood_flows] distinct flows so the chain reaches capacity *)
        let _, scratch =
          Nf.Nat.setup ~config:nat_config (Dslib.Layout.allocator ())
        in
        let flows =
          Array.of_list
            (Workload.Soak.nat_collision_flows scratch rng ~bucket:0
               flood_flows)
        in
        List.init packets (fun i ->
            Net.Build.udp_of_flow flows.(i mod flood_flows))
    | "lpm_prefix" ->
        let _, scratch =
          Nf.Router_lpm.setup (Dslib.Layout.allocator ()) ~routes:lpm_routes
        in
        Workload.Soak.lpm_attack_packets rng scratch ~slot:long_slot packets
    | _ -> assert false
  in
  let classes =
    [
      ("uniform", nat_entry); ("zipf", nat_entry); ("heavy_tail", nat_entry);
      ("churn", nat_entry); ("collision_flood", nat_entry);
      ("lpm_prefix", lpm_entry);
    ]
  in
  let worst_of =
    (* one analysis per distinct entry, shared across classes *)
    let cache = Hashtbl.create 4 in
    fun (entry : Nf.Registry.entry) ->
      match Hashtbl.find_opt cache entry.Nf.Registry.name with
      | Some w -> w
      | None ->
          let t =
            Bolt.Pipeline.analyze
              ~config:
                Bolt.Pipeline.Config.(
                  default |> with_contracts entry.Nf.Registry.contracts)
              entry.Nf.Registry.program
          in
          let w = Bolt.Pipeline.worst_case t in
          Hashtbl.add cache entry.Nf.Registry.name w;
          w
  in
  let stream_of base n =
    let rec take acc k = function
      | p :: rest when k > 0 -> take (Net.Packet.copy p :: acc) (k - 1) rest
      | _ -> List.rev acc
    in
    Workload.Stream.constant_rate ~in_port:0 ~start:1_000_000 ~gap:100
      (take [] n base)
  in
  let parity_check (entry : Nf.Registry.entry) base =
    (* specialized vs interpreter on the stream head before timing it *)
    let replay exec =
      List.map
        (fun (e : Workload.Stream.entry) ->
          let r =
            exec ~in_port:e.Workload.Stream.in_port ~now:e.Workload.Stream.now
              e.Workload.Stream.packet
          in
          (r, Net.Packet.to_bytes e.Workload.Stream.packet))
        (stream_of base 256)
    in
    let interp =
      let meter = Exec.Meter.create (Hw.Model.null ()) in
      let dss = entry.Nf.Registry.setup (Dslib.Layout.allocator ()) in
      replay (fun ~in_port ~now packet ->
          Exec.Meter.reset_observations meter;
          let r =
            Exec.Interp.run ~meter ~mode:(Exec.Interp.Production dss) ~in_port
              ~now entry.Nf.Registry.program packet
          in
          (r, Exec.Meter.observations meter))
    in
    let spec =
      let meter = Exec.Meter.create (Hw.Model.null ()) in
      let sp, _ = Nf.Registry.specialize entry ~meter in
      replay (fun ~in_port ~now packet ->
          Exec.Meter.reset_observations meter;
          let r = Exec.Specialize.run sp ~in_port ~now packet in
          (r, Exec.Meter.observations meter))
    in
    if interp <> spec then
      failwith
        (entry.Nf.Registry.name
       ^ ": specialized execution diverged from the interpreter")
  in
  let time_once (entry : Nf.Registry.entry) base n =
    let meter = Exec.Meter.create (Hw.Model.null ()) in
    let sp, _ = Nf.Registry.specialize entry ~meter in
    let stream = stream_of base n in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (e : Workload.Stream.entry) ->
        Exec.Meter.reset_observations meter;
        ignore
          (Exec.Specialize.exec sp ~in_port:e.Workload.Stream.in_port
             ~now:e.Workload.Stream.now e.Workload.Stream.packet
            : int))
      stream;
    Unix.gettimeofday () -. t0
  in
  let rows =
    List.map
      (fun (name, (entry : Nf.Registry.entry)) ->
        let base = base_packets name in
        let n = List.length base in
        parity_check entry base;
        let reps = if !quick then 2 else 3 in
        let w =
          let rec go i best =
            if i = 0 then best
            else go (i - 1) (Float.min best (time_once entry base n))
          in
          go reps infinity
        in
        let report =
          Experiments.Validate.run ~worst:(worst_of entry)
            ~dss:(entry.Nf.Registry.setup (Dslib.Layout.allocator ()))
            entry.Nf.Registry.program
            (stream_of base (min n sound_packets))
        in
        let sound = report.Experiments.Validate.violations = [] in
        let pps = float_of_int n /. w in
        Fmt.pr "  %-16s %-10s %9.0f pps   sound %b (headroom %.1f%% over %d pkts)@."
          name entry.Nf.Registry.name pps sound
          report.Experiments.Validate.worst_headroom_pct
          report.Experiments.Validate.packets;
        (name, entry.Nf.Registry.name, n, pps, sound, report))
      classes
  in
  let pps_of cls =
    List.filter_map
      (fun (name, _, _, pps, _, _) -> if name = cls then Some pps else None)
      rows
    |> List.hd
  in
  let degradation = pps_of "uniform" /. pps_of "collision_flood" in
  Fmt.pr "@.  collision flood runs x%.1f slower than uniform — and stays \
          inside the contract@."
    degradation;
  (* --shards N: replay the same attack classes through the sharded
     dataplane.  The dispatcher hash is independent of the NAT's table
     hash, so a collision flood that chains one bucket still spreads
     across shards — the skew column shows the steering histogram the
     scalability contract consumes (zipf/heavy-tail skew it, floods do
     not). *)
  let sharded =
    if !soak_shards <= 1 then []
    else begin
      let shards = !soak_shards in
      let spec_of = function "lpm_prefix" -> lpm_spec | _ -> nat_spec in
      Fmt.pr "@.  sharded replay (x%d shards):@." shards;
      List.map
        (fun (name, _) ->
          let spec = spec_of name in
          let base = base_packets name in
          let n = List.length base in
          let stream = stream_of base n in
          let plan = Dataplane.Plan.make ~shards spec in
          let hist = Dataplane.Shard.load_histogram plan stream in
          let skew_pct =
            let m = Array.fold_left max 0 hist in
            100 * shards * m / max 1 (Array.fold_left ( + ) 0 hist)
          in
          let head = stream_of base (min n 2048) in
          let serial =
            Dataplane.Shard.with_engine plan (fun e ->
                Dataplane.Shard.replay e head)
          in
          let parallel =
            Dataplane.Shard.with_engine plan (fun e ->
                Dataplane.Shard.replay ~parallel:true e head)
          in
          let parity =
            Dataplane.Oracle.equivalence ~strict_bytes:true
              ~nf:(Nf.Spec.name spec) serial parallel
            = []
          in
          if not parity then
            failwith (name ^ ": sharded replay diverged from serial");
          let reps = if !quick then 2 else 3 in
          let w =
            let rec go i best =
              if i = 0 then best
              else
                go (i - 1)
                  (Float.min best
                     (Dataplane.Shard.with_engine plan (fun e ->
                          Dataplane.Shard.drain ~parallel:true e stream)))
            in
            go reps infinity
          in
          let pps = float_of_int n /. w in
          Fmt.pr "  %-16s %9.0f pps   skew %d%%   parity %b@." name pps
            skew_pct parity;
          (name, pps, skew_pct, parity))
        classes
    end
  in
  write_json ~packets
    ([
       ("artifact", Perf.Json.String "soak");
       ("quick", Perf.Json.Bool !quick);
       ("seed", Perf.Json.Int 2025);
       ( "classes",
         Perf.Json.List
           (List.map
              (fun (name, nf, n, pps, sound, report) ->
                Perf.Json.Obj
                  [
                    ("class", Perf.Json.String name);
                    ("nf", Perf.Json.String nf);
                    ("packets", Perf.Json.Int n);
                    ("pps", Perf.Json.Int (int_of_float pps));
                    ("contract_sound", Perf.Json.Bool sound);
                    ( "soundness_packets",
                      Perf.Json.Int report.Experiments.Validate.packets );
                    ( "worst_headroom_pct",
                      Perf.Json.Int
                        (int_of_float
                           report.Experiments.Validate.worst_headroom_pct) );
                  ])
              rows) );
       ( "collision_vs_uniform_slowdown_pct",
         Perf.Json.Int (int_of_float (100. *. degradation)) );
     ]
    @
    if sharded = [] then []
    else
      [
        ("shards", Perf.Json.Int !soak_shards);
        ( "sharded",
          Perf.Json.List
            (List.map
               (fun (name, pps, skew_pct, parity) ->
                 Perf.Json.Obj
                   [
                     ("class", Perf.Json.String name);
                     ("pps", Perf.Json.Int (int_of_float pps));
                     ("skew_pct", Perf.Json.Int skew_pct);
                     ("parity_ok", Perf.Json.Bool parity);
                   ])
               sharded) );
      ])

(* ---- Sharded dataplane: scalability contract vs measurement ----------- *)

(* For firewall, nat and maglev: derive the NFork-style scalability
   contract at 1/2/4 shards (per-packet worst-case cycles from the NF's
   own BOLT analysis, dispatch term from Dispatch.cost_vec, skew term
   from the workload's steering histogram), measure the parallel drain,
   and gate on the dataplane's correctness invariants.  Parity and the
   affinity oracles gate everywhere; the speedup and prediction-error
   gates only fire on multicore hosts — on a 1-core container the
   contract itself predicts no speedup (the 1/cores floor), so those
   assertions would be vacuous there. *)
let scale () =
  section "Scale — sharded dataplane: scalability contract vs measured pps";
  let packets = if !quick then 1024 else 4096 in
  let reps = if !quick then 2 else 3 in
  let cores = Domain.recommended_domain_count () in
  let results =
    List.map
      (fun nf -> Dataplane.Scale.run ~packets ~reps nf)
      Dataplane.Scale.default_nfs
  in
  List.iter (fun r -> Fmt.pr "%a@." Dataplane.Scale.pp r) results;
  let oracles =
    [
      Dataplane.Oracle.conntrack_affinity ~shards:4 ();
      Dataplane.Oracle.nat_affinity ~shards:4 ();
    ]
  in
  Fmt.pr "@.";
  List.iter (fun r -> Fmt.pr "  %a@." Dataplane.Oracle.pp r) oracles;
  (* gates: always — parity and affinity *)
  List.iter
    (fun (r : Dataplane.Scale.result) ->
      List.iter
        (fun (l : Dataplane.Scale.level) ->
          if not l.Dataplane.Scale.parity_ok then
            failwith
              (Printf.sprintf "scale: %s diverged at %d shards" r.nf
                 l.Dataplane.Scale.shards))
        r.Dataplane.Scale.levels)
    results;
  if not (List.for_all Dataplane.Oracle.ok oracles) then
    failwith "scale: dispatcher affinity oracle found violations";
  (* gates: multicore only — speedup materialises and the prediction
     lands within the stated bound (50% at 2 shards; beyond that the
     unmodelled cross-domain effects grow with the shard count) *)
  if cores >= 2 then
    List.iter
      (fun (r : Dataplane.Scale.result) ->
        match
          List.find_opt
            (fun (l : Dataplane.Scale.level) -> l.Dataplane.Scale.shards = 2)
            r.Dataplane.Scale.levels
        with
        | None -> ()
        | Some l ->
            if l.Dataplane.Scale.measured_pps <= r.Dataplane.Scale.baseline_pps
            then
              failwith
                (Printf.sprintf
                   "scale: %s shows no speedup at 2 shards on a %d-core host"
                   r.nf cores);
            if Float.abs l.Dataplane.Scale.error_pct > 50. then
              failwith
                (Printf.sprintf
                   "scale: %s prediction off by %.0f%% at 2 shards (bound \
                    50%%)"
                   r.nf l.Dataplane.Scale.error_pct))
      results
  else
    Fmt.pr
      "@.  NOTE: single-core environment — the contract predicts no \
       speedup here@.  (1/cores floor); speedup and error-bound gates \
       require a multicore host.@.";
  write_json ~packets
    [
      ("artifact", Perf.Json.String "scale");
      ("quick", Perf.Json.Bool !quick);
      ("cores", Perf.Json.Int cores);
      ("error_bound_pct_at_2_shards", Perf.Json.Int 50);
      ("nfs", Perf.Json.List (List.map Dataplane.Scale.to_json results));
      ( "affinity",
        Perf.Json.List
          (List.map
             (fun (r : Dataplane.Oracle.report) ->
               Perf.Json.Obj
                 [
                   ("nf", Perf.Json.String r.Dataplane.Oracle.nf);
                   ("shards", Perf.Json.Int r.Dataplane.Oracle.shards);
                   ("checked", Perf.Json.Int r.Dataplane.Oracle.checked);
                   ( "violations",
                     Perf.Json.Int
                       (List.length r.Dataplane.Oracle.violations) );
                 ])
             oracles) );
    ]

(* ---- Network-wide contracts over the built-in topologies -------------- *)

(* For every built-in topology: jointly analyse the graph (route-tuple
   pruning included), compare the composed end-to-end bound against the
   naive sum of per-node worst cases (the Figure 3 property, network-
   wide), then replay the topology's deterministic workload through the
   specialized per-node harness and check every packet against the
   composed bound at its own observed PCVs.  Both properties gate: a
   contract violation or a composed bound that beats nothing fails the
   run. *)
let topo () =
  section "Topo — network-wide contracts: composed bound vs naive addition";
  let packets = if !quick then 256 else 1024 in
  let eval_all vecs vec metric =
    (* bind every PCV appearing in any compared vector to the same
       adversarial value, so const and PCV-bearing bounds compare *)
    let binding =
      List.sort_uniq compare (List.concat_map Perf.Cost_vec.pcvs vecs)
      |> List.map (fun p -> (p, 3))
    in
    Perf.Perf_expr.eval_exn binding (Perf.Cost_vec.get vec metric)
  in
  let rows =
    List.map
      (fun (entry : Topo.Builtin.entry) ->
        let g = entry.Topo.Builtin.graph in
        let t = Topo.Analysis.run ?jobs:!jobs g in
        let joint = Topo.Analysis.worst t in
        let naive =
          (* per-node standalone worst cases, added — what an operator
             without the joint walk would have to provision for *)
          List.fold_left
            (fun acc (_, (e : Nf.Registry.entry)) ->
              let pt =
                Bolt.Pipeline.analyze
                  ~config:
                    Bolt.Pipeline.Config.(
                      default |> with_contracts e.Nf.Registry.contracts)
                  e.Nf.Registry.program
              in
              Bolt.Compose.naive_add ~up:acc
                ~down:(Bolt.Pipeline.worst_case pt))
            Perf.Cost_vec.zero t.Topo.Analysis.entries
        in
        let joint_ic = eval_all [ joint; naive ] joint Perf.Metric.Instructions
        and naive_ic =
          eval_all [ joint; naive ] naive Perf.Metric.Instructions
        in
        if joint_ic > naive_ic then
          failwith
            (g.Topo.Graph.name
           ^ ": composed bound exceeds naive addition — composition bug");
        let harness = Topo.Harness.create g in
        let report =
          Topo.Harness.check harness ~worst:joint
            (entry.Topo.Builtin.workload ~packets)
        in
        if report.Topo.Harness.violations <> [] then begin
          Fmt.epr "%a@." Topo.Harness.pp_report report;
          failwith (g.Topo.Graph.name ^ ": measured cost escaped the bound")
        end;
        Fmt.pr
          "  %-14s %2d routes (%2d pruned)  joint IC %4d vs naive %4d \
           (%2.0f%% tighter)  %d pkts sound, headroom %.1f%%@."
          g.Topo.Graph.name
          (List.length t.Topo.Analysis.routes)
          t.Topo.Analysis.infeasible_routes joint_ic naive_ic
          (100. *. float_of_int (naive_ic - joint_ic) /. float_of_int naive_ic)
          report.Topo.Harness.packets report.Topo.Harness.worst_headroom_pct;
        (g.Topo.Graph.name, t, joint_ic, naive_ic, report))
      (Topo.Builtin.all ())
  in
  (* the headline property: joint analysis strictly beats naive addition
     on at least one topology (Figure 3, network-wide) *)
  if not (List.exists (fun (_, _, j, n, _) -> j < n) rows) then
    failwith "topo: joint bound never beat naive addition";
  write_json ~packets
    [
      ("artifact", Perf.Json.String "topo");
      ("quick", Perf.Json.Bool !quick);
      ( "topologies",
        Perf.Json.List
          (List.map
             (fun (name, t, joint_ic, naive_ic, report) ->
                     Perf.Json.Obj
                       [
                         ("name", Perf.Json.String name);
                         ( "routes",
                           Perf.Json.Int (List.length t.Topo.Analysis.routes)
                         );
                         ( "infeasible_pruned",
                           Perf.Json.Int t.Topo.Analysis.infeasible_routes );
                         ("unsolved", Perf.Json.Int t.Topo.Analysis.unsolved);
                         ("joint_ic", Perf.Json.Int joint_ic);
                         ("naive_ic", Perf.Json.Int naive_ic);
                         ( "tighter_pct",
                           Perf.Json.Int
                             (100 * (naive_ic - joint_ic) / naive_ic) );
                         ( "packets",
                           Perf.Json.Int report.Topo.Harness.packets );
                         ("contract_sound", Perf.Json.Bool true);
                         ( "worst_headroom_pct",
                           Perf.Json.Int
                             (int_of_float
                                report.Topo.Harness.worst_headroom_pct) );
                         ( "egresses",
                           Perf.Json.List
                             (List.map
                                (fun eg ->
                                  let cost, n =
                                    Topo.Analysis.egress_cost t eg
                                  in
                                  Perf.Json.Obj
                                    [
                                      ( "egress",
                                        Perf.Json.String
                                          (Fmt.str "%a"
                                             Topo.Analysis.pp_egress eg) );
                                      ("routes", Perf.Json.Int n);
                                      ( "ic",
                                        Perf.Json.Int
                                          (eval_all [ cost ] cost
                                             Perf.Metric.Instructions) );
                                    ])
                                (Topo.Analysis.egresses t)) );
                       ])
             rows) );
    ]

let chain3 () =
  section "Extension — three-NF chain, jointly analysed";
  Experiments.Extensions.chain3 Fmt.stdout

let ablations () =
  section "Ablation — class coalescing";
  Experiments.Extensions.ablation_coalescing Fmt.stdout;
  section "Ablation — conservative hardware model's L1 tracking";
  Experiments.Extensions.ablation_hw_model Fmt.stdout;
  section "Ablation — exact linearization in the symbolic engine";
  Experiments.Extensions.ablation_linearization Fmt.stdout

(* ---- Bechamel micro-benchmarks ---------------------------------------- *)

let bechamel_suite () =
  section "Bechamel micro-benchmarks (one per artifact family)";
  let open Bechamel in
  let quiet () = Exec.Meter.create (Hw.Model.null ()) in
  let alloc = Dslib.Layout.allocator () in
  let trie = Dslib.Lpm_trie.create ~base:(Dslib.Layout.region alloc)
      ~default_port:0 in
  Dslib.Lpm_trie.add_route trie ~prefix:0x0a000000 ~len:16 ~port:3;
  let map = Dslib.Hash_map.create ~base:(Dslib.Layout.region alloc)
      ~key_len:5 ~capacity:1024 ~buckets:1024 () in
  let key = [| 1; 2; 3; 4; 5 |] in
  ignore (Dslib.Hash_map.put map (quiet ()) key 9);
  let ft = Dslib.Flow_table.create ~base:(Dslib.Layout.region alloc)
      ~key_len:5 ~capacity:1024 ~buckets:1024 ~timeout:1000 () in
  let alloc_a = Dslib.Port_alloc.dll ~base:(Dslib.Layout.region alloc)
      ~port_lo:0 ~port_hi:1023 in
  let alloc_b = Dslib.Port_alloc.array ~base:(Dslib.Layout.region alloc)
      ~port_lo:0 ~port_hi:1023 in
  let ring = Dslib.Hash_ring.create ~base:(Dslib.Layout.region alloc)
      ~table_size:4099 ~backends:[ 0; 1; 2; 3 ] in
  let mac = Dslib.Mac_table.create ~base:(Dslib.Layout.region alloc)
      ~capacity:1024 ~buckets:1024 ~timeout:1_000_000 ~threshold:6 () in
  let nat_dss, _ = Nf.Nat.setup (Dslib.Layout.allocator ()) in
  let nat_packet =
    Net.Build.udp ~src_ip:0x0a000001 ~dst_ip:0x5db8d822 ~src_port:5000
      ~dst_port:80 ()
  in
  let nat_meter = Exec.Meter.create (Hw.Model.realistic ()) in
  let counter = ref 0 in
  let tests =
    [
      (* Tables 1/2: the running example's data structure *)
      Test.make ~name:"table1_2/lpm_trie.lookup"
        (Staged.stage (fun () ->
             ignore (Dslib.Lpm_trie.lookup trie (quiet ()) 0x0a0000ff)));
      (* Figure 1: a production NAT packet *)
      Test.make ~name:"figure1/nat.production_packet"
        (Staged.stage (fun () ->
             ignore
               (Exec.Interp.run ~meter:nat_meter
                  ~mode:(Exec.Interp.Production nat_dss) ~in_port:0
                  ~now:1_000_000 Nf.Nat.program nat_packet)));
      (* Table 3: cycle models *)
      Test.make ~name:"table3/realistic_model_access"
        (Staged.stage
           (let m = Hw.Realistic.create () in
            fun () ->
              incr counter;
              Hw.Realistic.mem m ~addr:(!counter * 64) ~write:false
                ~dependent:false));
      (* Table 4 / Figure 2: MAC learning *)
      Test.make ~name:"table4/mac_table.learn"
        (Staged.stage (fun () ->
             incr counter;
             Dslib.Mac_table.learn mac (quiet ())
               ~mac:(0x020000000000 lor (!counter land 0x3ff))
               ~port:1 ~now:1_000_000));
      (* Tables 5/Figure 3: symbolic execution of a stateless NF *)
      Test.make ~name:"table5/symbex.firewall"
        (Staged.stage (fun () ->
             ignore
               (Symbex.Engine.explore ~models:Bolt.Ds_models.default
                  Nf.Firewall.program)));
      (* Table 6: the NAT's hash-map probe *)
      Test.make ~name:"table6/hash_map.get_hit"
        (Staged.stage (fun () ->
             ignore (Dslib.Hash_map.get map (quiet ()) key)));
      (* Tables 7/8 / Figure 4: flow-table stamp + expiry machinery *)
      Test.make ~name:"table7_8/flow_table.put_get"
        (Staged.stage (fun () ->
             incr counter;
             let k = [| !counter land 0xff; 2; 3; 4; 5 |] in
             ignore (Dslib.Flow_table.put ft (quiet ()) k ~value:1
                       ~now:1_000_000);
             ignore (Dslib.Flow_table.get ft (quiet ()) k ~now:1_000_001)));
      (* Figures 5/6/7: the two allocators *)
      Test.make ~name:"figure5/port_alloc.dll"
        (Staged.stage (fun () ->
             let p = Dslib.Port_alloc.alloc alloc_a (quiet ()) in
             if p >= 0 then Dslib.Port_alloc.free alloc_a (quiet ()) p));
      Test.make ~name:"figure5/port_alloc.array"
        (Staged.stage (fun () ->
             let p = Dslib.Port_alloc.alloc alloc_b (quiet ()) in
             if p >= 0 then Dslib.Port_alloc.free alloc_b (quiet ()) p));
      (* P1/P2/P3: Maglev ring lookup as the array-access kernel *)
      Test.make ~name:"p123/hash_ring.backend_for"
        (Staged.stage (fun () ->
             incr counter;
             ignore (Dslib.Hash_ring.backend_for ring (quiet ()) !counter)));
      (* extensions *)
      Test.make ~name:"ext/count_min.update"
        (Staged.stage
           (let cm =
              Dslib.Count_min.create ~base:(Dslib.Layout.region alloc)
                ~rows:4 ~width:1024
            in
            fun () ->
              incr counter;
              ignore
                (Dslib.Count_min.update cm (quiet ())
                   ~key:[| !counter land 0xffff; 0; 0; 0; 17 |])));
      Test.make ~name:"ext/token_bucket.conform"
        (Staged.stage
           (let tb =
              Dslib.Token_bucket.create ~base:(Dslib.Layout.region alloc)
                ~rate:100 ~burst:100_000 ()
            in
            fun () ->
              incr counter;
              ignore
                (Dslib.Token_bucket.conform tb (quiet ()) ~bytes:60
                   ~now:!counter)));
      Test.make ~name:"ext/conntrack.production_packet"
        (Staged.stage
           (let dss, _ = Nf.Conntrack.setup (Dslib.Layout.allocator ()) in
            let meter = Exec.Meter.create (Hw.Model.realistic ()) in
            fun () ->
              incr counter;
              ignore
                (Exec.Interp.run ~meter ~mode:(Exec.Interp.Production dss)
                   ~in_port:0 ~now:(1_000_000 + !counter)
                   Nf.Conntrack.program nat_packet)));
    ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if !quick then 0.1 else 0.4))
      ~kde:None ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped
        ~name:"" [ test ]) in
      let analysed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] -> Fmt.pr "  %-36s %12.1f ns/run@." name ns
          | _ -> Fmt.pr "  %-36s (no estimate)@." name)
        analysed)
    tests

(* ---- Driver ------------------------------------------------------------ *)

let artifacts =
  [
    ("table1", table1);
    ("table2", table2);
    ("figure1", figure1_table3);
    ("table3", figure1_table3);
    ("p123", p123);
    ("table4", table4);
    ("figure2", figure2);
    ("table5", table5);
    ("figure3", figure3);
    ("table6", table6);
    ("table7", tables7_8_figure4);
    ("table8", tables7_8_figure4);
    ("figure4", tables7_8_figure4);
    ("figure5", figures5_6_7);
    ("figure6_7", figures5_6_7);
    ("conntrack", conntrack);
    ("speedup", speedup);
    ("floors", floors);
    ("throughput", exec_throughput);
    ("soak", soak);
    ("scale", scale);
    ("topo", topo);
    ("chain3", chain3);
    ("ablations", ablations);
    ("bechamel", bechamel_suite);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec absorb = function
    | "--quick" :: rest ->
        quick := true;
        absorb rest
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        absorb rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := Some n
        | _ ->
            Fmt.epr "--jobs expects a positive integer, got %S@." n;
            exit 1);
        absorb rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        absorb rest
    | "--shards" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> soak_shards := n
        | _ ->
            Fmt.epr "--shards expects a positive integer, got %S@." n;
            exit 1);
        absorb rest
    | "--trace" :: path :: rest ->
        trace_path := Some path;
        absorb rest
    | a :: rest -> a :: absorb rest
    | [] -> []
  in
  let args = absorb args in
  if !trace_path <> None then Obs.enable ();
  let run_selected () =
    match args with
    | [] ->
        (* everything, deduplicated, in paper order *)
        table1 ();
        table2 ();
        figure1_table3 ();
        p123 ();
        table4 ();
        figure2 ();
        table5 ();
        figure3 ();
        table6 ();
        tables7_8_figure4 ();
        figures5_6_7 ();
        conntrack ();
        speedup ();
        floors ();
        exec_throughput ();
        soak ();
        scale ();
        topo ();
        chain3 ();
        ablations ();
        bechamel_suite ()
    | names ->
        List.iter
          (fun name ->
            match List.assoc_opt name artifacts with
            | Some run -> run ()
            | None ->
                Fmt.epr "unknown artifact %S; known: %a@." name
                  Fmt.(list ~sep:(any ", ") string)
                  (List.map fst artifacts);
                exit 1)
          names
  in
  let write_trace () =
    match !trace_path with
    | Some path ->
        Obs.Trace_io.write ~path;
        Fmt.epr "wrote trace %s@." path
    | None -> ()
  in
  Fun.protect ~finally:write_trace run_selected
